//! Linear-chain conditional random fields (CRF) for sequence labeling.
//!
//! Objective (Figure 1(B)): maximize
//! `Σ_k [ Σ_j w_j F_j(y_k, x_k) − log Z(x_k) ]`,
//! i.e. the conditional log-likelihood of the gold label sequence of every
//! sentence; we minimize its negation. Each tuple is one sentence: a sequence
//! of (sparse observation features, gold label) pairs stored in a
//! [`bismarck_storage::Value::Sequence`] column — this mirrors how the CoNLL
//! chunking data is one row per sentence.
//!
//! The model has one weight per (observation feature, label) pair followed by
//! a dense `labels × labels` transition block. The per-example gradient is
//! computed with the standard forward–backward recursion in log space:
//! `∇ = E_model[F] − F(observed)`, so one IGD transition performs
//! forward–backward on one sentence and nudges the weights towards the
//! empirical feature counts.

use bismarck_linalg::ops::log_sum_exp;
use bismarck_linalg::SparseVector;
use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Linear-chain CRF over a sequence column.
#[derive(Debug, Clone)]
pub struct CrfTask {
    sequence_col: usize,
    num_features: usize,
    num_labels: usize,
    l2: f64,
}

impl CrfTask {
    /// Create a CRF task.
    ///
    /// * `sequence_col` — tuple position of the sequence column;
    /// * `num_features` — number of distinct observation features;
    /// * `num_labels` — number of labels.
    pub fn new(sequence_col: usize, num_features: usize, num_labels: usize) -> Self {
        assert!(num_labels > 0, "need at least one label");
        CrfTask {
            sequence_col,
            num_features,
            num_labels,
            l2: 0.0,
        }
    }

    /// Add a Gaussian prior `(λ/2)‖w‖²` applied via per-epoch shrinkage.
    pub fn with_l2(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "L2 penalty must be non-negative");
        self.l2 = lambda;
        self
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of observation features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Flat index of the (feature, label) state weight.
    #[inline]
    fn state_index(&self, feature: usize, label: usize) -> usize {
        feature * self.num_labels + label
    }

    /// Flat index of the (prev, next) transition weight.
    #[inline]
    fn trans_index(&self, prev: usize, next: usize) -> usize {
        self.num_features * self.num_labels + prev * self.num_labels + next
    }

    /// Per-position unary scores `node[t][y] = Σ_f x_t[f] · w[f,y]` read
    /// from a dense model slice.
    fn node_scores(&self, model: &[f64], seq: &[(SparseVector, u32)]) -> Vec<Vec<f64>> {
        seq.iter()
            .map(|(features, _)| {
                let mut scores = vec![0.0; self.num_labels];
                for (f, v) in features.iter() {
                    if f >= self.num_features {
                        continue;
                    }
                    for (y, score) in scores.iter_mut().enumerate() {
                        *score += v * model[self.state_index(f, y)];
                    }
                }
                scores
            })
            .collect()
    }

    /// Transition matrix read from a dense model slice.
    fn transitions(&self, model: &[f64]) -> Vec<Vec<f64>> {
        (0..self.num_labels)
            .map(|a| {
                (0..self.num_labels)
                    .map(|b| model[self.trans_index(a, b)])
                    .collect()
            })
            .collect()
    }

    /// Forward (alpha) recursion in log space. Returns (alphas, log Z).
    fn forward(&self, node: &[Vec<f64>], trans: &[Vec<f64>]) -> (Vec<Vec<f64>>, f64) {
        let t_len = node.len();
        let l = self.num_labels;
        let mut alpha = vec![vec![f64::NEG_INFINITY; l]; t_len];
        alpha[0].clone_from_slice(&node[0]);
        let mut scratch = vec![0.0; l];
        for t in 1..t_len {
            for y in 0..l {
                for (a, slot) in scratch.iter_mut().enumerate() {
                    *slot = alpha[t - 1][a] + trans[a][y];
                }
                alpha[t][y] = log_sum_exp(&scratch) + node[t][y];
            }
        }
        let log_z = log_sum_exp(&alpha[t_len - 1]);
        (alpha, log_z)
    }

    /// Backward (beta) recursion in log space.
    fn backward(&self, node: &[Vec<f64>], trans: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let t_len = node.len();
        let l = self.num_labels;
        let mut beta = vec![vec![0.0; l]; t_len];
        let mut scratch = vec![0.0; l];
        for t in (0..t_len - 1).rev() {
            for y in 0..l {
                for (b, slot) in scratch.iter_mut().enumerate() {
                    *slot = trans[y][b] + node[t + 1][b] + beta[t + 1][b];
                }
                beta[t][y] = log_sum_exp(&scratch);
            }
        }
        beta
    }

    /// Log-likelihood of the gold labels of one sequence under `model`.
    pub fn sequence_log_likelihood(&self, model: &[f64], seq: &[(SparseVector, u32)]) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        let node = self.node_scores(model, seq);
        let trans = self.transitions(model);
        let (_, log_z) = self.forward(&node, &trans);
        let mut score = 0.0;
        for (t, (_, label)) in seq.iter().enumerate() {
            let y = *label as usize % self.num_labels;
            score += node[t][y];
            if t > 0 {
                let prev = seq[t - 1].1 as usize % self.num_labels;
                score += trans[prev][y];
            }
        }
        score - log_z
    }

    /// Most likely label sequence (Viterbi decoding) for a feature sequence.
    pub fn viterbi(&self, model: &[f64], features: &[SparseVector]) -> Vec<usize> {
        if features.is_empty() {
            return Vec::new();
        }
        let seq: Vec<(SparseVector, u32)> = features.iter().map(|f| (f.clone(), 0)).collect();
        let node = self.node_scores(model, &seq);
        let trans = self.transitions(model);
        let t_len = node.len();
        let l = self.num_labels;
        let mut delta = vec![vec![f64::NEG_INFINITY; l]; t_len];
        let mut back = vec![vec![0usize; l]; t_len];
        delta[0].clone_from_slice(&node[0]);
        for t in 1..t_len {
            for y in 0..l {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                for a in 0..l {
                    let cand = delta[t - 1][a] + trans[a][y];
                    if cand > best {
                        best = cand;
                        arg = a;
                    }
                }
                delta[t][y] = best + node[t][y];
                back[t][y] = arg;
            }
        }
        let mut best_last = 0;
        for y in 1..l {
            if delta[t_len - 1][y] > delta[t_len - 1][best_last] {
                best_last = y;
            }
        }
        let mut path = vec![0usize; t_len];
        path[t_len - 1] = best_last;
        for t in (1..t_len).rev() {
            path[t - 1] = back[t][path[t]];
        }
        path
    }
}

impl IgdTask for CrfTask {
    fn name(&self) -> &'static str {
        "CRF"
    }

    fn dimension(&self) -> usize {
        self.num_features * self.num_labels + self.num_labels * self.num_labels
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some(seq) = tuple.get_sequence(self.sequence_col) else {
            return;
        };
        if seq.is_empty() {
            return;
        }
        // Forward–backward needs a coherent view of the weights, so snapshot
        // once per sentence; updates below go through the store (and are
        // therefore visible to concurrent workers under shared memory).
        let snapshot = model.snapshot();
        let node = self.node_scores(&snapshot, seq);
        let trans = self.transitions(&snapshot);
        let (alpha_msgs, log_z) = self.forward(&node, &trans);
        let beta_msgs = self.backward(&node, &trans);
        let l = self.num_labels;

        // State-feature updates: (empirical − expected) per position.
        for (t, (features, gold)) in seq.iter().enumerate() {
            let gold = *gold as usize % l;
            for y in 0..l {
                let marginal = (alpha_msgs[t][y] + beta_msgs[t][y] - log_z).exp();
                let coeff = (if y == gold { 1.0 } else { 0.0 }) - marginal;
                if coeff == 0.0 {
                    continue;
                }
                for (f, v) in features.iter() {
                    if f < self.num_features {
                        model.update(self.state_index(f, y), alpha * coeff * v);
                    }
                }
            }
        }

        // Transition updates: (empirical − expected) per adjacent pair.
        for t in 1..seq.len() {
            let gold_prev = seq[t - 1].1 as usize % l;
            let gold_next = seq[t].1 as usize % l;
            for a in 0..l {
                for b in 0..l {
                    let log_edge =
                        alpha_msgs[t - 1][a] + trans[a][b] + node[t][b] + beta_msgs[t][b] - log_z;
                    let marginal = log_edge.exp();
                    let empirical = if a == gold_prev && b == gold_next {
                        1.0
                    } else {
                        0.0
                    };
                    let coeff = empirical - marginal;
                    if coeff != 0.0 {
                        model.update(self.trans_index(a, b), alpha * coeff);
                    }
                }
            }
        }
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match tuple.get_sequence(self.sequence_col) {
            Some(seq) if !seq.is_empty() => -self.sequence_log_likelihood(model, seq),
            _ => 0.0,
        }
    }

    fn regularizer(&self, model: &[f64]) -> f64 {
        0.5 * self.l2 * model.iter().map(|v| v * v).sum::<f64>()
    }

    fn proximal_step(&self, model: &mut [f64], alpha: f64) {
        if self.l2 > 0.0 {
            let shrink = 1.0 / (1.0 + alpha * self.l2);
            for v in model.iter_mut() {
                *v *= shrink;
            }
        }
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        if self.l2 > 0.0 {
            ProximalPolicy::PerEpoch
        } else {
            ProximalPolicy::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    /// Two labels, two features; feature 0 indicates label 0, feature 1
    /// indicates label 1. Sentences alternate labels.
    fn sentence(labels: &[u32]) -> Vec<(SparseVector, u32)> {
        labels
            .iter()
            .map(|&y| (SparseVector::from_pairs(vec![(y as usize, 1.0)]), y))
            .collect()
    }

    fn crf_table(sentences: &[Vec<(SparseVector, u32)>]) -> Table {
        let schema = Schema::new(vec![Column::new("sentence", DataType::Sequence)]).unwrap();
        let mut t = Table::new("crf", schema);
        for s in sentences {
            t.insert(vec![Value::Sequence(s.clone())]).unwrap();
        }
        t
    }

    fn task() -> CrfTask {
        CrfTask::new(0, 2, 2)
    }

    #[test]
    fn dimension_includes_transitions() {
        let t = task();
        assert_eq!(t.dimension(), 2 * 2 + 2 * 2);
        assert_eq!(t.num_labels(), 2);
        assert_eq!(t.num_features(), 2);
    }

    #[test]
    fn zero_model_gives_uniform_likelihood() {
        let t = task();
        let seq = sentence(&[0, 1, 0]);
        let ll = t.sequence_log_likelihood(&vec![0.0; t.dimension()], &seq);
        // Uniform distribution over 2^3 label sequences.
        assert!((ll - (1.0f64 / 8.0).ln()).abs() < 1e-9);
    }

    #[test]
    fn training_increases_likelihood_and_decodes_correctly() {
        let t = task();
        let data = crf_table(&[
            sentence(&[0, 1, 0, 1]),
            sentence(&[1, 0, 1, 0]),
            sentence(&[0, 0, 1, 1]),
            sentence(&[1, 1, 0, 0]),
        ]);
        let mut store = DenseModelStore::zeros(t.dimension());
        let initial: f64 = data
            .scan()
            .map(|tup| t.example_loss(store.as_slice(), tup))
            .sum();
        for _ in 0..60 {
            for tuple in data.scan() {
                t.gradient_step(&mut store, tuple, 0.2);
            }
        }
        let model = store.into_vec();
        let trained: f64 = data.scan().map(|tup| t.example_loss(&model, tup)).sum();
        assert!(
            trained < initial * 0.5,
            "trained {trained} vs initial {initial}"
        );

        // Viterbi recovers labels on data where features identify labels.
        let feats: Vec<SparseVector> = sentence(&[0, 1, 1, 0])
            .into_iter()
            .map(|(f, _)| f)
            .collect();
        assert_eq!(t.viterbi(&model, &feats), vec![0, 1, 1, 0]);
    }

    #[test]
    fn gradient_at_perfect_model_is_small() {
        // With hugely confident weights the expected counts match the
        // empirical ones, so a step barely changes the model.
        let t = task();
        let mut model = vec![0.0; t.dimension()];
        model[t.state_index(0, 0)] = 20.0;
        model[t.state_index(1, 1)] = 20.0;
        let data = crf_table(&[sentence(&[0, 1])]);
        let mut store = DenseModelStore::new(model.clone());
        t.gradient_step(&mut store, data.get(0).unwrap(), 1.0);
        let after = store.into_vec();
        let delta: f64 = after
            .iter()
            .zip(model.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta < 1e-6, "delta {delta}");
    }

    #[test]
    fn empty_and_missing_sequences_are_ignored() {
        let t = task();
        let data = crf_table(&[Vec::new()]);
        let mut store = DenseModelStore::zeros(t.dimension());
        t.gradient_step(&mut store, data.get(0).unwrap(), 0.5);
        assert!(store.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(t.example_loss(store.as_slice(), data.get(0).unwrap()), 0.0);
    }

    #[test]
    fn viterbi_of_empty_is_empty() {
        let t = task();
        assert!(t.viterbi(&vec![0.0; t.dimension()], &[]).is_empty());
    }

    #[test]
    fn l2_regularization_shrinks() {
        let t = CrfTask::new(0, 2, 2).with_l2(1.0);
        assert_eq!(t.proximal_policy(), ProximalPolicy::PerEpoch);
        let mut w = vec![1.0; t.dimension()];
        t.proximal_step(&mut w, 1.0);
        assert!(w.iter().all(|&v| (v - 0.5).abs() < 1e-12));
        assert!(t.regularizer(&[1.0; 8]) > 0.0);
    }

    #[test]
    fn log_likelihood_is_never_positive() {
        let t = task();
        let seq = sentence(&[0, 1, 1]);
        for scale in [0.0, 0.5, 3.0] {
            let model = vec![scale; t.dimension()];
            assert!(t.sequence_log_likelihood(&model, &seq) <= 1e-12);
        }
    }
}
