//! Logistic regression (LR).
//!
//! Objective (Figure 1(B)): `Σ_i log(1 + exp(−y_i wᵀx_i)) + µ‖w‖₁`, with an
//! optional ridge term `(λ/2)‖w‖²` folded into the per-epoch proximal step.
//! The transition is the paper's Figure 4 `LR_Transition`:
//!
//! ```c
//! wx  = Dot_Product(w, e.x);
//! sig = Sigmoid(-wx * e.y);
//! c   = stepsize * e.y * sig;
//! Scale_And_Add(w, e.x, c);
//! ```

use bismarck_linalg::ops::{log1p_exp, sigmoid};
use bismarck_linalg::projection::soft_threshold_vec;
use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::Tuple;

use crate::model::ModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Binary logistic regression over a feature-vector column and a ±1 label
/// column.
#[derive(Debug, Clone)]
pub struct LogisticRegressionTask {
    features_col: usize,
    label_col: usize,
    dimension: usize,
    l1: f64,
    l2: f64,
}

impl LogisticRegressionTask {
    /// Create a task reading features from column `features_col` and the ±1
    /// label from `label_col`, with a model of `dimension` coefficients.
    pub fn new(features_col: usize, label_col: usize, dimension: usize) -> Self {
        LogisticRegressionTask {
            features_col,
            label_col,
            dimension,
            l1: 0.0,
            l2: 0.0,
        }
    }

    /// Add an L1 penalty `µ‖w‖₁` (applied via per-epoch soft thresholding).
    pub fn with_l1(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0, "L1 penalty must be non-negative");
        self.l1 = mu;
        self
    }

    /// Add a ridge penalty `(λ/2)‖w‖²` (applied via per-epoch shrinkage).
    pub fn with_l2(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "L2 penalty must be non-negative");
        self.l2 = lambda;
        self
    }

    /// Borrow the example's feature view and label — zero-copy, so the
    /// per-tuple transition never touches the heap.
    fn example<'t>(&self, tuple: &'t Tuple) -> Option<(FeatureVectorRef<'t>, f64)> {
        let x = tuple.feature_view(self.features_col)?;
        let y = tuple.get_double(self.label_col)?;
        Some((x, y))
    }

    /// Predicted probability of the positive class for a feature vector.
    pub fn predict_probability(model: &[f64], x: FeatureVectorRef<'_>) -> f64 {
        sigmoid(x.dot(model))
    }
}

impl IgdTask for LogisticRegressionTask {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn dimension(&self) -> usize {
        self.dimension
    }

    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
        let Some((x, y)) = self.example(tuple) else {
            return;
        };
        // Figure 4 LR_Transition, as two bulk kernels on the store.
        let wx = model.dot_view(x);
        let sig = sigmoid(-wx * y);
        let c = alpha * y * sig;
        model.axpy_view(x, c);
    }

    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
        match self.example(tuple) {
            Some((x, y)) => log1p_exp(-y * x.dot(model)),
            None => 0.0,
        }
    }

    fn regularizer(&self, model: &[f64]) -> f64 {
        let l1 = self.l1 * model.iter().map(|v| v.abs()).sum::<f64>();
        let l2 = 0.5 * self.l2 * model.iter().map(|v| v * v).sum::<f64>();
        l1 + l2
    }

    fn proximal_step(&self, model: &mut [f64], alpha: f64) {
        if self.l2 > 0.0 {
            let shrink = 1.0 / (1.0 + alpha * self.l2);
            for v in model.iter_mut() {
                *v *= shrink;
            }
        }
        if self.l1 > 0.0 {
            soft_threshold_vec(model, alpha * self.l1);
        }
    }

    fn proximal_policy(&self) -> ProximalPolicy {
        if self.l1 > 0.0 || self.l2 > 0.0 {
            ProximalPolicy::PerEpoch
        } else {
            ProximalPolicy::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_linalg::SparseVector;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    fn dense_table() -> Table {
        // Linearly separable 2-D data: label = sign of first coordinate.
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("lr", schema);
        let pts = [
            (vec![2.0, 0.5], 1.0),
            (vec![1.5, -0.3], 1.0),
            (vec![1.0, 1.0], 1.0),
            (vec![-2.0, 0.2], -1.0),
            (vec![-1.0, -0.5], -1.0),
            (vec![-1.5, 0.8], -1.0),
        ];
        for (x, y) in pts {
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    fn train(task: &LogisticRegressionTask, table: &Table, epochs: usize, alpha: f64) -> Vec<f64> {
        let mut store = DenseModelStore::zeros(task.dimension());
        for _ in 0..epochs {
            for tuple in table.scan() {
                task.gradient_step(&mut store, tuple, alpha);
            }
            let mut model = store.into_vec();
            task.proximal_step(&mut model, alpha);
            store = DenseModelStore::new(model);
        }
        store.into_vec()
    }

    #[test]
    fn loss_decreases_with_training() {
        let t = dense_table();
        let task = LogisticRegressionTask::new(0, 1, 2);
        let zero = vec![0.0, 0.0];
        let initial: f64 = t.scan().map(|tup| task.example_loss(&zero, tup)).sum();
        let model = train(&task, &t, 50, 0.5);
        let trained: f64 = t.scan().map(|tup| task.example_loss(&model, tup)).sum();
        assert!(
            trained < initial * 0.5,
            "trained {trained} vs initial {initial}"
        );
    }

    #[test]
    fn trained_model_separates_classes() {
        let t = dense_table();
        let task = LogisticRegressionTask::new(0, 1, 2);
        let model = train(&task, &t, 100, 0.5);
        for tuple in t.scan() {
            let x = tuple.feature_view(0).unwrap();
            let y = tuple.get_double(1).unwrap();
            let p = LogisticRegressionTask::predict_probability(&model, x);
            if y > 0.0 {
                assert!(p > 0.5, "positive example classified {p}");
            } else {
                assert!(p < 0.5, "negative example classified {p}");
            }
        }
    }

    #[test]
    fn sparse_features_only_touch_their_coordinates() {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::SparseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("lr_sparse", schema);
        t.insert(vec![
            Value::from(SparseVector::from_pairs(vec![(2, 1.0)])),
            Value::Double(1.0),
        ])
        .unwrap();
        let task = LogisticRegressionTask::new(0, 1, 5);
        let mut store = DenseModelStore::zeros(5);
        task.gradient_step(&mut store, t.get(0).unwrap(), 0.1);
        let w = store.into_vec();
        assert!(w[2] > 0.0);
        assert!(w.iter().enumerate().all(|(i, &v)| i == 2 || v == 0.0));
    }

    #[test]
    fn l1_proximal_sparsifies() {
        let task = LogisticRegressionTask::new(0, 1, 3).with_l1(1.0);
        assert_eq!(task.proximal_policy(), ProximalPolicy::PerEpoch);
        let mut w = vec![0.05, -2.0, 0.5];
        task.proximal_step(&mut w, 0.1);
        assert_eq!(w[0], 0.0);
        assert!(w[1] < 0.0 && w[1] > -2.0);
    }

    #[test]
    fn l2_proximal_shrinks() {
        let task = LogisticRegressionTask::new(0, 1, 2).with_l2(1.0);
        let mut w = vec![1.0, -1.0];
        task.proximal_step(&mut w, 1.0);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn regularizer_combines_l1_and_l2() {
        let task = LogisticRegressionTask::new(0, 1, 2)
            .with_l1(2.0)
            .with_l2(4.0);
        let w = vec![1.0, -1.0];
        // l1: 2*(1+1)=4; l2: 0.5*4*(1+1)=4
        assert!((task.regularizer(&w) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn missing_columns_are_ignored() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]).unwrap();
        let mut t = Table::new("bad", schema);
        t.insert(vec![Value::Int(1)]).unwrap();
        let task = LogisticRegressionTask::new(0, 1, 2);
        let mut store = DenseModelStore::zeros(2);
        task.gradient_step(&mut store, t.get(0).unwrap(), 0.1);
        assert_eq!(store.as_slice(), &[0.0, 0.0]);
        assert_eq!(task.example_loss(&[0.0, 0.0], t.get(0).unwrap()), 0.0);
    }

    #[test]
    fn without_regularization_policy_is_none() {
        let task = LogisticRegressionTask::new(0, 1, 2);
        assert_eq!(task.proximal_policy(), ProximalPolicy::None);
        assert_eq!(task.name(), "LR");
        assert_eq!(task.regularizer(&[3.0]), 0.0);
    }
}
