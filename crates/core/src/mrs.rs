//! Multiplexed reservoir sampling (MRS) — Section 3.4 and Figure 6.
//!
//! When a dataset is too large to shuffle even once, the classical fallback
//! is to subsample it with a reservoir and train only on the sample — but the
//! reservoir throws away data that could have helped the model converge.
//! MRS multiplexes gradient steps over *both* streams:
//!
//! * the **I/O Worker** scans the table in storage order, offers each tuple
//!   to a reservoir, and performs a gradient step on every tuple the
//!   reservoir does *not* keep (the "dropped example d" of Figure 6);
//! * the **Memory Worker** concurrently loops over the buffer filled during
//!   the previous pass, performing gradient steps on that
//!   without-replacement sample;
//! * both update a model in shared memory with NoLock (Hogwild!) updates;
//! * after each pass the buffers swap, and the Memory Worker is signalled by
//!   polling a shared integer.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::time::Duration;

use bismarck_storage::reservoir::ReservoirOutcome;
use bismarck_storage::{ReservoirSampler, SharedModel, Table, Tuple};
use bismarck_uda::{ConvergenceTest, EpochOutcome, EpochRunner, TrainingHistory};
use parking_lot::RwLock;

use crate::model::{ModelStore, NoLockStore};
use crate::stepsize::StepSizeSchedule;
use crate::task::{IgdTask, ProximalPolicy};
use crate::trainer::TrainedModel;

/// Configuration of the MRS trainer.
#[derive(Debug, Clone, Copy)]
pub struct MrsConfig {
    /// Reservoir / buffer capacity in tuples (the paper uses ~1–10% of the
    /// dataset).
    pub buffer_size: usize,
    /// Step-size schedule indexed by pass number.
    pub step_size: StepSizeSchedule,
    /// Stopping condition (each I/O pass counts as one epoch).
    pub convergence: ConvergenceTest,
    /// RNG seed for the reservoir.
    pub seed: u64,
    /// Whether to run the concurrent Memory Worker. Disabling it degrades
    /// MRS to plain "gradient on the non-sampled stream", which is useful
    /// for ablations.
    pub memory_worker: bool,
    /// Bounded window the I/O Worker grants the Memory Worker at shutdown to
    /// drain at least one sweep of the final buffer (on loaded or
    /// single-core hosts the worker may otherwise never be scheduled during
    /// a short run). `Duration::ZERO` disables the wait entirely — the knob
    /// a governed deadline should set when there is no time left to spend.
    pub drain_window: Duration,
}

impl Default for MrsConfig {
    fn default() -> Self {
        MrsConfig {
            buffer_size: 1024,
            step_size: StepSizeSchedule::default(),
            convergence: ConvergenceTest::FixedEpochs(10),
            seed: 42,
            memory_worker: true,
            drain_window: Duration::from_millis(200),
        }
    }
}

/// Signal values polled by the Memory Worker.
const SIGNAL_IDLE: i64 = -1;
const SIGNAL_STOP: i64 = -2;

/// Statistics reported by an MRS training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MrsStats {
    /// Gradient steps taken by the I/O Worker (on dropped tuples).
    pub io_steps: u64,
    /// Gradient steps taken by the Memory Worker (on buffered tuples).
    pub memory_steps: u64,
    /// Number of buffer swaps performed.
    pub buffer_swaps: u64,
}

/// The multiplexed-reservoir-sampling trainer.
#[derive(Debug, Clone)]
pub struct MrsTrainer<'a, T: IgdTask> {
    task: &'a T,
    config: MrsConfig,
}

impl<'a, T: IgdTask> MrsTrainer<'a, T> {
    /// Create an MRS trainer.
    pub fn new(task: &'a T, config: MrsConfig) -> Self {
        MrsTrainer { task, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MrsConfig {
        &self.config
    }

    /// Train on a table (visited in storage order — MRS exists precisely for
    /// data that cannot be shuffled).
    pub fn train(&self, table: &Table) -> (TrainedModel, MrsStats) {
        let task = self.task;
        let config = self.config;
        let shared = SharedModel::from_slice(&task.initial_model());

        // Double buffer: the Memory Worker iterates one buffer while the I/O
        // Worker's reservoir fills the other.
        let buffers = [
            RwLock::new(Vec::<Tuple>::new()),
            RwLock::new(Vec::<Tuple>::new()),
        ];
        let signal = AtomicI64::new(SIGNAL_IDLE);
        let memory_steps = AtomicUsize::new(0);

        let mut io_steps: u64 = 0;
        let mut buffer_swaps: u64 = 0;
        let mut history = TrainingHistory::default();

        std::thread::scope(|scope| {
            // Memory Worker: poll the signal, loop over the indicated buffer.
            if config.memory_worker {
                let shared_clone = shared.clone();
                let buffers = &buffers;
                let signal = &signal;
                let memory_steps = &memory_steps;
                scope.spawn(move || {
                    let mut store = NoLockStore::new(shared_clone);
                    loop {
                        let s = signal.load(Ordering::Acquire);
                        if s == SIGNAL_STOP {
                            break;
                        }
                        if s == SIGNAL_IDLE {
                            std::thread::yield_now();
                            continue;
                        }
                        let buffer = buffers[s as usize].read();
                        if buffer.is_empty() {
                            drop(buffer);
                            std::thread::yield_now();
                            continue;
                        }
                        // One sweep over the buffer; the step size mirrors
                        // the I/O worker's current pass (read from the
                        // signal's upper bits would be overkill — we use the
                        // initial step size, which is what the buffer's
                        // examples would have received when sampled).
                        let alpha = config.step_size.at(0);
                        for tuple in buffer.iter() {
                            task.gradient_step(&mut store, tuple, alpha);
                            memory_steps.fetch_add(1, Ordering::Relaxed);
                        }
                        drop(buffer);
                        std::thread::yield_now();
                    }
                });
            }

            // I/O Worker (this thread): reservoir-sample each pass, stepping
            // on dropped tuples; swap buffers between passes.
            let runner = EpochRunner::new(config.convergence);
            let mut reservoir: ReservoirSampler<Tuple> =
                ReservoirSampler::new(config.buffer_size, config.seed);
            history = runner.run(|epoch| {
                let alpha = config.step_size.at(epoch);
                let mut store = NoLockStore::new(shared.clone());
                for tuple in table.scan() {
                    match reservoir.offer(tuple.clone()) {
                        ReservoirOutcome::StoredInEmptySlot => {}
                        ReservoirOutcome::Replaced(dropped)
                        | ReservoirOutcome::Rejected(dropped) => {
                            task.gradient_step(&mut store, &dropped, alpha);
                            io_steps += 1;
                        }
                    }
                }

                // Publish the current reservoir contents into the buffer the
                // Memory Worker is *not* reading, then swap.
                let target = (epoch % 2) as i64;
                {
                    let mut buffer = buffers[target as usize].write();
                    buffer.clear();
                    buffer.extend(reservoir.items().iter().cloned());
                }
                signal.store(target, Ordering::Release);
                buffer_swaps += 1;

                // Per-epoch proximal step (MRS uses the lock-free shared
                // model, so hard constraints are enforced between passes).
                if task.proximal_policy() != ProximalPolicy::None {
                    let mut snapshot = shared.snapshot();
                    task.proximal_step(&mut snapshot, alpha);
                    shared.overwrite(&snapshot);
                }

                let model = shared.snapshot();
                let mut loss = task.regularizer(&model);
                for tuple in table.scan() {
                    loss += task.example_loss(&model, tuple);
                }
                EpochOutcome {
                    loss,
                    gradient_norm: None,
                    shuffle_duration: Duration::ZERO,
                    retries: 0,
                }
            });

            // Graceful shutdown: give the Memory Worker a bounded window
            // (`config.drain_window`) to drain at least one sweep of the
            // final buffer before stopping, so the buffered sample is not
            // silently wasted when the worker was never scheduled.
            if config.memory_worker
                && config.buffer_size > 0
                && !table.is_empty()
                && config.drain_window > Duration::ZERO
            {
                let deadline = std::time::Instant::now() + config.drain_window;
                while memory_steps.load(Ordering::Relaxed) == 0
                    && std::time::Instant::now() < deadline
                {
                    std::thread::yield_now();
                }
            }
            signal.store(SIGNAL_STOP, Ordering::Release);
        });

        let model = shared.snapshot();
        let stats = MrsStats {
            io_steps,
            memory_steps: memory_steps.load(Ordering::Relaxed) as u64,
            buffer_swaps,
        };
        (
            TrainedModel {
                task_name: task.name(),
                model,
                history,
            },
            stats,
        )
    }
}

/// Plain subsampling baseline: fill a reservoir in one pass, then train only
/// on the sample for the remaining epochs. This is the "Subsampling" line of
/// Figure 10.
pub fn subsampling_train<T: IgdTask>(
    task: &T,
    table: &Table,
    buffer_size: usize,
    step_size: StepSizeSchedule,
    convergence: ConvergenceTest,
    seed: u64,
) -> TrainedModel {
    // One pass to build the without-replacement sample.
    let mut reservoir: ReservoirSampler<Tuple> = ReservoirSampler::new(buffer_size, seed);
    for tuple in table.scan() {
        reservoir.offer(tuple.clone());
    }
    let sample = reservoir.into_items();

    let mut model = task.initial_model();
    let runner = EpochRunner::new(convergence);
    let history = runner.run(|epoch| {
        let alpha = step_size.at(epoch);
        let mut store = crate::model::DenseModelStore::new(std::mem::take(&mut model));
        for tuple in &sample {
            task.gradient_step(&mut store, tuple, alpha);
            if task.proximal_policy() == ProximalPolicy::PerStep {
                let mut snapshot = store.snapshot();
                task.proximal_step(&mut snapshot, alpha);
                store = crate::model::DenseModelStore::new(snapshot);
            }
        }
        model = store.into_vec();
        if task.proximal_policy() == ProximalPolicy::PerEpoch {
            task.proximal_step(&mut model, alpha);
        }
        // Loss is still measured over the FULL table: the question Figure 10
        // asks is how well the subsample-trained model does on all the data.
        let mut loss = task.regularizer(&model);
        for tuple in table.scan() {
            loss += task.example_loss(&model, tuple);
        }
        EpochOutcome {
            loss,
            gradient_norm: None,
            shuffle_duration: Duration::ZERO,
            retries: 0,
        }
    });

    TrainedModel {
        task_name: task.name(),
        model,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::LogisticRegressionTask;
    use bismarck_storage::{Column, DataType, Schema, Value};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Clustered (label-sorted) classification data: the regime MRS targets.
    fn clustered_table(n: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("data", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let y = if i < n / 2 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.5 + rng.gen_range(-0.5..0.5),
                -y + rng.gen_range(-0.5..0.5),
            ];
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    fn lr_task() -> LogisticRegressionTask {
        LogisticRegressionTask::new(0, 1, 2)
    }

    #[test]
    fn mrs_reduces_loss_and_reports_stats() {
        let table = clustered_table(400, 3);
        let task = lr_task();
        let config = MrsConfig {
            buffer_size: 40,
            step_size: StepSizeSchedule::Constant(0.1),
            convergence: ConvergenceTest::FixedEpochs(5),
            seed: 7,
            memory_worker: true,
            ..MrsConfig::default()
        };
        let zero_loss: f64 = {
            let zero = task.initial_model();
            table.scan().map(|tup| task.example_loss(&zero, tup)).sum()
        };
        let (trained, stats) = MrsTrainer::new(&task, config).train(&table);
        assert!(trained.final_loss().unwrap() < zero_loss * 0.7);
        assert!(stats.io_steps > 0, "I/O worker must step on dropped tuples");
        assert!(stats.memory_steps > 0, "memory worker must run");
        assert_eq!(stats.buffer_swaps, 5);
        assert_eq!(trained.epochs(), 5);
    }

    #[test]
    fn mrs_without_memory_worker_still_trains() {
        let table = clustered_table(200, 5);
        let task = lr_task();
        let config = MrsConfig {
            buffer_size: 20,
            step_size: StepSizeSchedule::Constant(0.1),
            convergence: ConvergenceTest::FixedEpochs(3),
            memory_worker: false,
            seed: 1,
            ..MrsConfig::default()
        };
        let (trained, stats) = MrsTrainer::new(&task, config).train(&table);
        assert_eq!(stats.memory_steps, 0);
        assert!(stats.io_steps > 0);
        assert!(trained.final_loss().unwrap().is_finite());
    }

    #[test]
    fn subsampling_trains_only_on_the_sample() {
        let table = clustered_table(300, 9);
        let task = lr_task();
        let trained = subsampling_train(
            &task,
            &table,
            30,
            StepSizeSchedule::Constant(0.1),
            ConvergenceTest::FixedEpochs(10),
            11,
        );
        assert_eq!(trained.epochs(), 10);
        assert!(trained.final_loss().unwrap().is_finite());
    }

    #[test]
    fn mrs_converges_at_least_as_well_as_subsampling_on_clustered_data() {
        let table = clustered_table(600, 13);
        let task = lr_task();
        let epochs = 6;
        let buffer = 60;
        let (mrs, _) = MrsTrainer::new(
            &task,
            MrsConfig {
                buffer_size: buffer,
                step_size: StepSizeSchedule::Constant(0.1),
                convergence: ConvergenceTest::FixedEpochs(epochs),
                seed: 21,
                memory_worker: true,
                ..MrsConfig::default()
            },
        )
        .train(&table);
        let sub = subsampling_train(
            &task,
            &table,
            buffer,
            StepSizeSchedule::Constant(0.1),
            ConvergenceTest::FixedEpochs(epochs),
            21,
        );
        // MRS uses strictly more data per pass, so after the same number of
        // passes it should not be meaningfully worse.
        assert!(mrs.final_loss().unwrap() <= sub.final_loss().unwrap() * 1.1);
    }

    #[test]
    fn default_config_is_sane() {
        let config = MrsConfig::default();
        assert!(config.buffer_size > 0);
        assert!(config.memory_worker);
        let task = lr_task();
        let trainer = MrsTrainer::new(&task, config);
        assert_eq!(trainer.config().buffer_size, 1024);
    }
}
