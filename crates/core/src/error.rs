//! Typed errors for the fault-tolerant training runtime.
//!
//! An RDBMS does not abort the server when one operator misbehaves, and
//! neither should an in-RDBMS trainer: every failure mode of a training run
//! — a panicking worker, a diverged (non-finite) model, a checkpoint I/O
//! problem, a cooperative interrupt — is surfaced as a [`TrainError`] that
//! carries the last model known to be healthy, so callers can degrade
//! gracefully instead of losing all progress.

use bismarck_storage::CheckpointError;

use crate::serving::PublishError;
use crate::trainer::TrainedModel;

/// Why a training run stopped before completing normally.
///
/// The recoverable variants carry `last_good`: the model as of the last
/// epoch that finished with an entirely finite model and loss (the initial
/// model if no epoch completed), together with the history of the epochs
/// that did complete.
#[derive(Debug, Clone)]
pub enum TrainError {
    /// One or more gradient workers panicked mid-epoch. The failing epoch's
    /// partial updates are discarded.
    WorkerPanic {
        /// Epoch (0-based) during which the panic occurred.
        epoch: usize,
        /// Number of workers that panicked.
        failed_workers: usize,
        /// Panic payload of the first failed worker, if it carried a string.
        message: String,
        /// Model and history as of the last healthy epoch.
        last_good: Box<TrainedModel>,
    },
    /// The model or loss went non-finite and the step-size backoff budget
    /// (see [`crate::trainer::BackoffPolicy`]) was exhausted.
    Diverged {
        /// Epoch (0-based) that diverged past the retry budget.
        epoch: usize,
        /// Divergence recoveries consumed before giving up.
        retries: u32,
        /// Model and history as of the last healthy epoch.
        last_good: Box<TrainedModel>,
    },
    /// A checkpoint could not be written or read back.
    Checkpoint(CheckpointError),
    /// The serving handle configured via
    /// [`crate::trainer::TrainerConfig::with_serving`] cannot accept this
    /// run's models (its dimension differs from the task's). Detected before
    /// the first epoch, so no training work is lost.
    Serving(PublishError),
    /// The run observed its stop flag (see
    /// [`crate::trainer::TrainerConfig::with_stop_flag`]) and exited at an
    /// epoch boundary.
    Interrupted {
        /// Epoch (0-based) that would have run next.
        epoch: usize,
        /// Model and history as of the last completed epoch.
        last_good: Box<TrainedModel>,
    },
}

impl TrainError {
    /// The last healthy model, when the failure mode preserves one.
    pub fn last_good(&self) -> Option<&TrainedModel> {
        match self {
            TrainError::WorkerPanic { last_good, .. }
            | TrainError::Diverged { last_good, .. }
            | TrainError::Interrupted { last_good, .. } => Some(last_good),
            TrainError::Checkpoint(_) | TrainError::Serving(_) => None,
        }
    }

    /// Consume the error, keeping the last healthy model if there is one.
    pub fn into_last_good(self) -> Option<TrainedModel> {
        match self {
            TrainError::WorkerPanic { last_good, .. }
            | TrainError::Diverged { last_good, .. }
            | TrainError::Interrupted { last_good, .. } => Some(*last_good),
            TrainError::Checkpoint(_) | TrainError::Serving(_) => None,
        }
    }

    /// The epoch at which the run stopped, when meaningful.
    pub fn epoch(&self) -> Option<usize> {
        match self {
            TrainError::WorkerPanic { epoch, .. }
            | TrainError::Diverged { epoch, .. }
            | TrainError::Interrupted { epoch, .. } => Some(*epoch),
            TrainError::Checkpoint(_) | TrainError::Serving(_) => None,
        }
    }
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::WorkerPanic {
                epoch,
                failed_workers,
                message,
                ..
            } => write!(
                f,
                "{failed_workers} worker(s) panicked during epoch {epoch}: {message}"
            ),
            TrainError::Diverged { epoch, retries, .. } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} step-size backoff(s)"
            ),
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::Serving(e) => write!(f, "serving handle rejected the run: {e}"),
            TrainError::Interrupted { epoch, .. } => {
                write!(f, "training interrupted before epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Serving(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PublishError> for TrainError {
    fn from(e: PublishError) -> Self {
        TrainError::Serving(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismarck_uda::TrainingHistory;

    fn dummy_model() -> Box<TrainedModel> {
        Box::new(TrainedModel {
            task_name: "test",
            model: vec![1.0, 2.0],
            history: TrainingHistory::default(),
        })
    }

    #[test]
    fn accessors_expose_last_good_and_epoch() {
        let err = TrainError::Diverged {
            epoch: 7,
            retries: 3,
            last_good: dummy_model(),
        };
        assert_eq!(err.epoch(), Some(7));
        assert_eq!(err.last_good().unwrap().model, vec![1.0, 2.0]);
        assert_eq!(err.into_last_good().unwrap().model, vec![1.0, 2.0]);

        let err = TrainError::Checkpoint(CheckpointError::BadMagic);
        assert_eq!(err.epoch(), None);
        assert!(err.last_good().is_none());
        assert!(err.into_last_good().is_none());
    }

    #[test]
    fn display_messages_are_informative() {
        let err = TrainError::WorkerPanic {
            epoch: 2,
            failed_workers: 1,
            message: "boom".into(),
            last_good: dummy_model(),
        };
        let msg = err.to_string();
        assert!(msg.contains("epoch 2") && msg.contains("boom"), "{msg}");
        assert!(TrainError::Diverged {
            epoch: 1,
            retries: 4,
            last_good: dummy_model(),
        }
        .to_string()
        .contains("4 step-size backoff"));
    }
}
