//! Process-level resource governance: deadlines, cooperative cancellation,
//! memory budgets and admission control.
//!
//! A real RDBMS never lets one statement run away with the process. The
//! durability layer (WAL + snapshots) makes Bismarck survive crashes and the
//! fault-tolerant trainer makes it survive panicking workers, but a long
//! `SVMTrain`, a pathological join or an unbounded `COPY` still needs a way
//! to be *stopped*: a deadline, a cancel button, and a ceiling on how much
//! intermediate state it may materialize. This module provides that layer.
//!
//! The design is cooperative, like the trainer's stop flag: a [`QueryGuard`]
//! is a cheap, clonable bundle of (deadline, cancel flag, [`MemoryBudget`])
//! that execution loops poll at natural boundaries — row batches in the SQL
//! executor, epoch boundaries in the trainers, batch boundaries in serving.
//! Nothing is preempted mid-tuple, so a guarded operation always stops at a
//! consistent point: the WAL-backed catalog stays recoverable and training
//! returns the last-good model.
//!
//! The [`Governor`] is the process-wide authority: it hands out guards under
//! an admission policy (at most `max_concurrent` live statements; excess
//! requests are *shed* with a typed error rather than queued unboundedly) and
//! owns graceful shutdown ([`Governor::shutdown`]): refuse new work, cancel
//! every outstanding guard, and wait for the in-flight statements to drain.
//!
//! ```
//! use std::time::Duration;
//! use bismarck_core::governor::{Governor, QueryLimits};
//!
//! let governor = Governor::new(2);
//! let guard = governor
//!     .admit(QueryLimits::none().with_timeout(Duration::from_millis(50)))
//!     .expect("under the concurrency cap");
//! assert!(guard.check().is_ok());
//! guard.cancel();
//! assert!(guard.check().is_err());
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Why a guarded operation must stop ([`QueryGuard::check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardViolation {
    /// The guard's deadline passed.
    DeadlineExceeded,
    /// The guard was cancelled (directly or by a [`Governor::shutdown`]).
    Cancelled,
}

impl std::fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardViolation::DeadlineExceeded => write!(f, "statement deadline exceeded"),
            GuardViolation::Cancelled => write!(f, "statement cancelled"),
        }
    }
}

impl std::error::Error for GuardViolation {}

/// Typed failure from [`MemoryBudget::reserve`]: granting the reservation
/// would push the guard past its byte limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the failed reservation asked for.
    pub requested: usize,
    /// Bytes already reserved when the request arrived.
    pub reserved: usize,
    /// The budget's limit.
    pub limit: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} bytes with {} of {} already reserved",
            self.requested, self.reserved, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Byte-accounted memory budget shared by all clones of a [`QueryGuard`].
///
/// Reservations are a single atomic compare-and-swap on the shared counter —
/// cheap enough to charge per row batch — and fail with a typed
/// [`BudgetExceeded`] instead of letting the allocation happen. A limit of
/// `usize::MAX` (the default) disables enforcement while still counting, so
/// an unlimited guard can report how much a statement materialized.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    reserved: AtomicUsize,
}

impl MemoryBudget {
    /// A budget capped at `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryBudget {
            limit,
            reserved: AtomicUsize::new(0),
        }
    }

    /// A counting-only budget that never rejects a reservation.
    pub fn unlimited() -> Self {
        MemoryBudget::new(usize::MAX)
    }

    /// Reserve `bytes` against the budget, failing if the limit would be
    /// exceeded. A failed reservation changes nothing: the statement can
    /// surface the error and the session stays usable.
    pub fn reserve(&self, bytes: usize) -> Result<(), BudgetExceeded> {
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_add(bytes);
            if new > self.limit {
                return Err(BudgetExceeded {
                    requested: bytes,
                    reserved: current,
                    limit: self.limit,
                });
            }
            match self.reserved.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Return `bytes` to the budget (e.g. when an intermediate result is
    /// dropped mid-statement). Releasing more than was reserved saturates at
    /// zero rather than underflowing.
    pub fn release(&self, bytes: usize) {
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_sub(bytes);
            match self.reserved.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }

    /// The byte limit, or `None` when the budget is counting-only.
    pub fn limit(&self) -> Option<usize> {
        (self.limit != usize::MAX).then_some(self.limit)
    }
}

/// Limits a guard is created with: an optional deadline and an optional
/// memory ceiling. Built with the `with_*` methods from [`QueryLimits::none`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryLimits {
    /// Absolute point in time after which the statement must stop.
    pub deadline: Option<Instant>,
    /// Ceiling on intermediate-result bytes the statement may materialize.
    pub memory_bytes: Option<usize>,
}

impl QueryLimits {
    /// No limits: the guard only supports cancellation (and byte counting).
    pub fn none() -> Self {
        QueryLimits::default()
    }

    /// Stop the statement once `timeout` has elapsed from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Stop the statement at the absolute instant `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cap the statement's materialized intermediate results at `bytes`.
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }
}

#[derive(Debug)]
struct GuardState {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    budget: MemoryBudget,
    /// Admission slot held for the guard's whole lifetime; `None` for guards
    /// created without a governor.
    /// Held only for its `Drop` impl — never read.
    #[allow(dead_code)]
    lease: Option<Lease>,
}

/// Decrements the governor's active-statement count when the last clone of
/// the guard drops, freeing the admission slot.
#[derive(Debug)]
struct Lease {
    active: Arc<AtomicUsize>,
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A cheap, clonable handle a statement carries through every execution
/// layer: deadline, cooperative cancel flag and byte-accounted memory
/// budget. All clones share the same state, so cancelling any clone stops
/// work everywhere the guard was threaded — the SQL row loops, the trainers'
/// epoch boundaries and the serving batch loop all poll the same flag.
#[derive(Debug, Clone)]
pub struct QueryGuard {
    state: Arc<GuardState>,
}

impl QueryGuard {
    /// A guard with the given limits, not tied to any [`Governor`]. Useful
    /// for standalone deadlines/budgets and in tests.
    pub fn new(limits: QueryLimits) -> Self {
        QueryGuard::with_lease(limits, None)
    }

    /// A guard with no deadline and no memory ceiling; only cancellation.
    pub fn unlimited() -> Self {
        QueryGuard::new(QueryLimits::none())
    }

    fn with_lease(limits: QueryLimits, lease: Option<Lease>) -> Self {
        QueryGuard {
            state: Arc::new(GuardState {
                deadline: limits.deadline,
                cancelled: AtomicBool::new(false),
                budget: limits
                    .memory_bytes
                    .map_or_else(MemoryBudget::unlimited, MemoryBudget::new),
                lease,
            }),
        }
    }

    /// Request cancellation: every loop polling this guard (or any clone of
    /// it) stops at its next check point.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Acquire)
    }

    /// The guard's absolute deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.state.deadline
    }

    /// Time remaining before the deadline (`None` if the guard has no
    /// deadline; `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.state
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the guard should stop work: cancelled or past its deadline.
    /// The cheap boolean twin of [`QueryGuard::check`] for call sites that
    /// do not need to distinguish the two (e.g. the trainers, which surface
    /// both as `TrainError::Interrupted`).
    pub fn should_stop(&self) -> bool {
        self.check().is_err()
    }

    /// Poll the guard: `Err(Cancelled)` once cancelled, `Err(DeadlineExceeded)`
    /// once the deadline has passed, `Ok(())` otherwise. Cancellation wins
    /// over an expired deadline so an operator-initiated cancel (including
    /// shutdown) is reported as such.
    pub fn check(&self) -> Result<(), GuardViolation> {
        if self.is_cancelled() {
            return Err(GuardViolation::Cancelled);
        }
        if let Some(deadline) = self.state.deadline {
            if Instant::now() >= deadline {
                return Err(GuardViolation::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The guard's memory budget.
    pub fn budget(&self) -> &MemoryBudget {
        &self.state.budget
    }

    /// Charge `bytes` of intermediate-result memory to the guard's budget.
    /// Convenience for `self.budget().reserve(bytes)`.
    pub fn reserve(&self, bytes: usize) -> Result<(), BudgetExceeded> {
        self.state.budget.reserve(bytes)
    }
}

impl Default for QueryGuard {
    fn default() -> Self {
        QueryGuard::unlimited()
    }
}

/// Why the [`Governor`] refused to admit a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The concurrency cap is full. The request is shed immediately — the
    /// governor never queues work unboundedly.
    Shed {
        /// Statements currently running.
        active: usize,
        /// The configured cap.
        max_concurrent: usize,
    },
    /// The governor is shutting down and admits no new work.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Shed {
                active,
                max_concurrent,
            } => write!(
                f,
                "admission shed: {active} of {max_concurrent} statement slots in use"
            ),
            AdmissionError::ShuttingDown => write!(f, "governor is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What [`Governor::shutdown`] accomplished before its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Statements in flight when shutdown began.
    pub in_flight: usize,
    /// Outstanding guards that were cancelled.
    pub guards_cancelled: usize,
    /// Whether every in-flight statement finished before the deadline.
    pub drained: bool,
}

#[derive(Debug)]
struct GovernorState {
    max_concurrent: usize,
    active: Arc<AtomicUsize>,
    shutting_down: AtomicBool,
    /// Weak handles to every admitted guard so shutdown can cancel them.
    /// Pruned of dead entries on each admission.
    guards: Mutex<Vec<Weak<GuardState>>>,
}

/// The process-level admission authority: hands out [`QueryGuard`]s up to a
/// concurrency cap and owns graceful shutdown. Clonable; all clones share
/// the same state.
///
/// ```
/// use bismarck_core::governor::{AdmissionError, Governor, QueryLimits};
///
/// let governor = Governor::new(1);
/// let first = governor.admit(QueryLimits::none()).unwrap();
/// // The cap is 1, so a second concurrent statement is shed, not queued.
/// assert!(matches!(
///     governor.admit(QueryLimits::none()),
///     Err(AdmissionError::Shed { .. })
/// ));
/// drop(first); // statement finishes → slot frees
/// assert!(governor.admit(QueryLimits::none()).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Governor {
    state: Arc<GovernorState>,
}

impl Governor {
    /// A governor admitting at most `max_concurrent` simultaneous statements
    /// (a cap of zero is promoted to one — a governor that can run nothing
    /// is never what the caller meant).
    pub fn new(max_concurrent: usize) -> Self {
        Governor {
            state: Arc::new(GovernorState {
                max_concurrent: max_concurrent.max(1),
                active: Arc::new(AtomicUsize::new(0)),
                shutting_down: AtomicBool::new(false),
                guards: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Statements currently holding an admission slot.
    pub fn active(&self) -> usize {
        self.state.active.load(Ordering::Acquire)
    }

    /// The configured concurrency cap.
    pub fn max_concurrent(&self) -> usize {
        self.state.max_concurrent
    }

    /// Whether [`Governor::shutdown`] has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::Acquire)
    }

    /// Admit one statement under `limits`, or shed it with a typed error.
    /// The returned guard holds its admission slot until the last clone
    /// drops.
    pub fn admit(&self, limits: QueryLimits) -> Result<QueryGuard, AdmissionError> {
        if self.is_shutting_down() {
            return Err(AdmissionError::ShuttingDown);
        }
        let state = &self.state;
        // Reserve a slot with a CAS loop so concurrent admissions cannot
        // oversubscribe the cap.
        let mut active = state.active.load(Ordering::Acquire);
        loop {
            if active >= state.max_concurrent {
                return Err(AdmissionError::Shed {
                    active,
                    max_concurrent: state.max_concurrent,
                });
            }
            match state.active.compare_exchange_weak(
                active,
                active + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => active = actual,
            }
        }
        // A shutdown that raced with the reservation above may have missed
        // this guard in its cancel sweep; hand back the slot.
        if self.is_shutting_down() {
            state.active.fetch_sub(1, Ordering::AcqRel);
            return Err(AdmissionError::ShuttingDown);
        }
        let guard = QueryGuard::with_lease(
            limits,
            Some(Lease {
                active: Arc::clone(&state.active),
            }),
        );
        let mut guards = state.guards.lock().expect("governor registry poisoned");
        guards.retain(|w| w.strong_count() > 0);
        guards.push(Arc::downgrade(&guard.state));
        Ok(guard)
    }

    /// Gracefully shut the process's statement execution down: refuse new
    /// admissions, cancel every outstanding guard (stopping SQL row loops,
    /// training epochs and serving batches at their next check point), and
    /// wait until the in-flight statements drain or `deadline` passes.
    ///
    /// Cooperative stopping means every layer exits at a consistent
    /// boundary: trainers return their last-good model (publishing it to any
    /// serving handle), and statement-level writes are either fully applied
    /// or fully absent from the WAL-backed catalog. Callers holding the
    /// catalog should follow a drained shutdown with
    /// `Database::compact()` so restart recovers from a clean snapshot —
    /// the SQL layer's `SqlSession::shutdown` does exactly that.
    pub fn shutdown(&self, deadline: Instant) -> ShutdownReport {
        self.state.shutting_down.store(true, Ordering::Release);
        let in_flight = self.active();
        let guards_cancelled = {
            let mut guards = self
                .state
                .guards
                .lock()
                .expect("governor registry poisoned");
            let mut cancelled = 0usize;
            for weak in guards.drain(..) {
                if let Some(state) = weak.upgrade() {
                    state.cancelled.store(true, Ordering::Release);
                    cancelled += 1;
                }
            }
            cancelled
        };
        // Drain: in-flight statements observe their cancelled guards at the
        // next row-batch/epoch boundary and release their slots on drop.
        let mut drained = self.active() == 0;
        while !drained && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            drained = self.active() == 0;
        }
        ShutdownReport {
            in_flight,
            guards_cancelled,
            drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_reserves_and_rejects_past_limit() {
        let budget = MemoryBudget::new(100);
        assert!(budget.reserve(60).is_ok());
        assert!(budget.reserve(40).is_ok());
        let err = budget.reserve(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(err.reserved, 100);
        assert_eq!(err.limit, 100);
        assert_eq!(budget.reserved(), 100, "failed reservation changes nothing");
        budget.release(50);
        assert!(budget.reserve(30).is_ok());
        assert_eq!(budget.reserved(), 80);
    }

    #[test]
    fn budget_release_saturates_at_zero() {
        let budget = MemoryBudget::new(10);
        budget.reserve(5).unwrap();
        budget.release(100);
        assert_eq!(budget.reserved(), 0);
    }

    #[test]
    fn unlimited_budget_counts_without_rejecting() {
        let budget = MemoryBudget::unlimited();
        assert!(budget.limit().is_none());
        assert!(budget.reserve(usize::MAX / 2).is_ok());
        assert!(budget.reserve(usize::MAX).is_ok(), "saturates, never fails");
    }

    #[test]
    fn guard_deadline_and_cancel_are_observed() {
        let guard = QueryGuard::new(QueryLimits::none().with_timeout(Duration::from_millis(5)));
        assert!(guard.check().is_ok());
        assert!(!guard.should_stop());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(guard.check(), Err(GuardViolation::DeadlineExceeded));
        assert!(guard.should_stop());
        assert_eq!(guard.remaining(), Some(Duration::ZERO));

        let guard = QueryGuard::unlimited();
        assert!(guard.deadline().is_none());
        assert!(guard.remaining().is_none());
        guard.cancel();
        assert_eq!(guard.check(), Err(GuardViolation::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_expired_deadline() {
        let past = Instant::now() - Duration::from_secs(1);
        let guard = QueryGuard::new(QueryLimits::none().with_deadline(past));
        guard.cancel();
        assert_eq!(guard.check(), Err(GuardViolation::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let guard = QueryGuard::new(QueryLimits::none().with_memory_limit(64));
        let clone = guard.clone();
        clone.reserve(64).unwrap();
        assert!(guard.reserve(1).is_err(), "budget is shared across clones");
        guard.cancel();
        assert!(clone.is_cancelled(), "cancel flag is shared across clones");
    }

    #[test]
    fn admission_caps_concurrency_and_frees_on_drop() {
        let governor = Governor::new(2);
        let a = governor.admit(QueryLimits::none()).unwrap();
        let b = governor.admit(QueryLimits::none()).unwrap();
        assert_eq!(governor.active(), 2);
        match governor.admit(QueryLimits::none()) {
            Err(AdmissionError::Shed {
                active,
                max_concurrent,
            }) => {
                assert_eq!(active, 2);
                assert_eq!(max_concurrent, 2);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        // A clone keeps the slot alive; only the last drop frees it.
        let b2 = b.clone();
        drop(b);
        assert_eq!(governor.active(), 2);
        drop(b2);
        assert_eq!(governor.active(), 1);
        assert!(governor.admit(QueryLimits::none()).is_ok());
        drop(a);
    }

    #[test]
    fn zero_cap_is_promoted_to_one() {
        let governor = Governor::new(0);
        assert_eq!(governor.max_concurrent(), 1);
        assert!(governor.admit(QueryLimits::none()).is_ok());
    }

    #[test]
    fn shutdown_cancels_outstanding_guards_and_refuses_new_work() {
        let governor = Governor::new(4);
        let guard = governor.admit(QueryLimits::none()).unwrap();
        let worker = {
            let guard = guard.clone();
            std::thread::spawn(move || {
                // Simulate a statement polling its guard at loop boundaries.
                while !guard.should_stop() {
                    std::thread::yield_now();
                }
            })
        };
        // Drop our handle so only the worker's clone keeps the slot.
        drop(guard);
        let report = governor.shutdown(Instant::now() + Duration::from_secs(5));
        worker.join().unwrap();
        assert_eq!(report.in_flight, 1);
        assert_eq!(report.guards_cancelled, 1);
        assert!(report.drained);
        assert_eq!(governor.active(), 0);
        assert!(matches!(
            governor.admit(QueryLimits::none()),
            Err(AdmissionError::ShuttingDown)
        ));
    }

    #[test]
    fn shutdown_reports_undrained_statements_at_deadline() {
        let governor = Governor::new(1);
        // A "stuck" statement that never polls its guard.
        let stuck = governor.admit(QueryLimits::none()).unwrap();
        let report = governor.shutdown(Instant::now() + Duration::from_millis(20));
        assert!(!report.drained);
        assert_eq!(report.in_flight, 1);
        drop(stuck);
        assert_eq!(governor.active(), 0);
    }
}
