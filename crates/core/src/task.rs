//! The task abstraction: what a developer writes to add a new analytics
//! technique to Bismarck.
//!
//! Figure 4 of the paper shows that the LR and SVM implementations differ in
//! only a few lines inside the transition function. We capture that with
//! [`IgdTask`]: a task declares its model dimension and initial model, a
//! per-example **gradient step** (Equation 2), a per-example **loss** term,
//! an optional **regularizer** `P(w)`, and an optional **proximal step**
//! `Π_{αP}` (Appendix A). Everything else — epochs, ordering, parallelism,
//! convergence, persistence — is shared infrastructure.

use bismarck_storage::Tuple;

use crate::model::ModelStore;

/// When the proximal / projection operator is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProximalPolicy {
    /// The task has no proximal operator (P = 0 or P folded into the
    /// gradient, e.g. L2 regularization).
    None,
    /// Apply the proximal operator after every gradient step. Required for
    /// hard constraints such as the portfolio simplex.
    PerStep,
    /// Apply the proximal operator once at the end of each epoch. Used by
    /// soft regularizers (e.g. L1) where a per-step application is
    /// unnecessarily expensive, and by the shared-memory parallel executors
    /// where a dense per-step projection would serialize the workers.
    PerEpoch,
}

/// An analytics task expressed as an incremental-gradient program.
///
/// Implementations must be cheap to share across threads: the parallel
/// executors call [`IgdTask::gradient_step`] concurrently from several
/// workers against a shared model store.
pub trait IgdTask: Send + Sync {
    /// Short task name used in experiment output (e.g. `"LR"`, `"SVM"`).
    fn name(&self) -> &'static str;

    /// Dimension of the flat model vector.
    fn dimension(&self) -> usize;

    /// The initial model (usually all zeros, or a model carried over from a
    /// previous training run).
    fn initial_model(&self) -> Vec<f64> {
        vec![0.0; self.dimension()]
    }

    /// Perform one incremental gradient step on one example:
    /// `w ← w − α ∇f_i(w)`, expressed through the model store so the same
    /// code runs sequentially, under a lock, or against shared memory.
    fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64);

    /// The loss term `f_i(w)` contributed by one example (excluding the
    /// regularizer `P`).
    fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64;

    /// The regularizer `P(w)` added once per objective evaluation.
    fn regularizer(&self, _model: &[f64]) -> f64 {
        0.0
    }

    /// The proximal operator `Π_{αP}` applied according to
    /// [`IgdTask::proximal_policy`]. Default: identity.
    fn proximal_step(&self, _model: &mut [f64], _alpha: f64) {}

    /// How often the proximal operator should be applied.
    fn proximal_policy(&self) -> ProximalPolicy {
        ProximalPolicy::None
    }

    /// Full objective value: `Σ_i f_i(w) + P(w)` over a set of tuples.
    fn objective<'a>(&self, model: &[f64], tuples: impl Iterator<Item = &'a Tuple>) -> f64
    where
        Self: Sized,
    {
        let mut total = self.regularizer(model);
        for tuple in tuples {
            total += self.example_loss(model, tuple);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};

    /// A toy task: 1-D mean estimation, `f_i(w) = 0.5 (w - y_i)^2`.
    struct MeanTask;

    impl IgdTask for MeanTask {
        fn name(&self) -> &'static str {
            "MEAN"
        }
        fn dimension(&self) -> usize {
            1
        }
        fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
            let y = tuple.get_double(0).unwrap_or(0.0);
            let w = model.read(0);
            model.update(0, -alpha * (w - y));
        }
        fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
            let y = tuple.get_double(0).unwrap_or(0.0);
            0.5 * (model[0] - y).powi(2)
        }
    }

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Column::new("y", DataType::Double)]).unwrap();
        let mut t = Table::new("t", schema);
        for &v in values {
            t.insert(vec![Value::Double(v)]).unwrap();
        }
        t
    }

    #[test]
    fn default_initial_model_is_zero() {
        assert_eq!(MeanTask.initial_model(), vec![0.0]);
        assert_eq!(MeanTask.proximal_policy(), ProximalPolicy::None);
        assert_eq!(MeanTask.regularizer(&[1.0]), 0.0);
    }

    #[test]
    fn gradient_steps_move_towards_mean() {
        let t = table(&[2.0, 4.0]);
        let mut store = DenseModelStore::zeros(1);
        for _ in 0..200 {
            for tuple in t.scan() {
                MeanTask.gradient_step(&mut store, tuple, 0.1);
            }
        }
        assert!((store.read(0) - 3.0).abs() < 0.2);
    }

    #[test]
    fn objective_sums_examples_and_regularizer() {
        let t = table(&[1.0, 3.0]);
        let obj = MeanTask.objective(&[2.0], t.scan());
        assert!((obj - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proximal_default_is_identity() {
        let mut w = vec![1.0, -2.0];
        MeanTask.proximal_step(&mut w, 0.5);
        assert_eq!(w, vec![1.0, -2.0]);
    }
}
