//! The sequential Bismarck trainer: epochs, data ordering and convergence.
//!
//! This is the single-threaded path of Figure 2: each epoch runs the IGD
//! aggregate over the table in the configured scan order, evaluates the loss,
//! and consults the convergence test. The three ordering policies of
//! Section 3.2 (Clustered, ShuffleOnce, ShuffleAlways) differ only in which
//! permutation — if any — is handed to the scan, and in how often the
//! (timed) shuffle cost is paid.

use std::time::{Duration, Instant};

use bismarck_storage::{ScanOrder, Table};
use bismarck_uda::{run_sequential, ConvergenceTest, EpochOutcome, EpochRunner, TrainingHistory};

use crate::igd::IgdAggregate;
use crate::stepsize::StepSizeSchedule;
use crate::task::IgdTask;

/// Configuration shared by the sequential and parallel trainers.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Step-size schedule indexed by epoch.
    pub step_size: StepSizeSchedule,
    /// Data ordering policy.
    pub scan_order: ScanOrder,
    /// Stopping condition.
    pub convergence: ConvergenceTest,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            step_size: StepSizeSchedule::default(),
            scan_order: ScanOrder::ShuffleOnce { seed: 42 },
            convergence: ConvergenceTest::paper_default(20),
        }
    }
}

impl TrainerConfig {
    /// Builder-style override of the step-size schedule.
    pub fn with_step_size(mut self, step_size: StepSizeSchedule) -> Self {
        self.step_size = step_size;
        self
    }

    /// Builder-style override of the scan order.
    pub fn with_scan_order(mut self, scan_order: ScanOrder) -> Self {
        self.scan_order = scan_order;
        self
    }

    /// Builder-style override of the convergence test.
    pub fn with_convergence(mut self, convergence: ConvergenceTest) -> Self {
        self.convergence = convergence;
        self
    }
}

/// A trained model plus the per-epoch history that produced it.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// Name of the task that produced the model.
    pub task_name: &'static str,
    /// The flat model vector.
    pub model: Vec<f64>,
    /// Per-epoch loss and timing records.
    pub history: TrainingHistory,
}

impl TrainedModel {
    /// Final objective value, if at least one epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.history.final_loss()
    }

    /// Number of epochs run.
    pub fn epochs(&self) -> usize {
        self.history.epochs()
    }
}

/// The sequential trainer.
#[derive(Debug, Clone)]
pub struct Trainer<'a, T: IgdTask> {
    task: &'a T,
    config: TrainerConfig,
}

impl<'a, T: IgdTask> Trainer<'a, T> {
    /// Create a trainer for a task with the given configuration.
    pub fn new(task: &'a T, config: TrainerConfig) -> Self {
        Trainer { task, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Full objective (`Σ_i f_i(w) + P(w)`) of a model over a table.
    pub fn objective(&self, model: &[f64], table: &Table) -> f64 {
        let mut total = self.task.regularizer(model);
        for tuple in table.scan() {
            total += self.task.example_loss(model, tuple);
        }
        total
    }

    /// Train on a table starting from the task's initial model.
    pub fn train(&self, table: &Table) -> TrainedModel {
        self.train_from(table, self.task.initial_model())
    }

    /// Train on a table starting from a caller-provided model (the paper's
    /// "a model returned by a previous run").
    pub fn train_from(&self, table: &Table, initial_model: Vec<f64>) -> TrainedModel {
        let mut model = initial_model;
        // ShuffleOnce reuses one permutation; cache it so its cost is paid
        // exactly once and counted in epoch 0's shuffle time.
        let mut cached_permutation: Option<Vec<usize>> = None;
        let runner = EpochRunner::new(self.config.convergence);
        let task = self.task;
        let config = self.config;

        let history = runner.run(|epoch| {
            // 1. Reorder the data if the policy asks for it (timed).
            let shuffle_start = Instant::now();
            let permutation: Option<&[usize]> = match config.scan_order {
                ScanOrder::Clustered => None,
                ScanOrder::ShuffleOnce { .. } => {
                    if cached_permutation.is_none() {
                        cached_permutation = config.scan_order.permutation(table.len(), epoch);
                    }
                    cached_permutation.as_deref()
                }
                ScanOrder::ShuffleAlways { .. } => {
                    cached_permutation = config.scan_order.permutation(table.len(), epoch);
                    cached_permutation.as_deref()
                }
            };
            let shuffle_duration = if config.scan_order.shuffles_at(epoch) {
                shuffle_start.elapsed()
            } else {
                Duration::ZERO
            };

            // 2. One epoch of IGD as a UDA.
            let alpha = config.step_size.at(epoch);
            let aggregate = IgdAggregate::new(task, alpha, std::mem::take(&mut model));
            let state = run_sequential(&aggregate, table, permutation);
            model = state.model.into_vec();

            // 3. Evaluate the objective for the convergence test.
            let mut loss = task.regularizer(&model);
            for tuple in table.scan() {
                loss += task.example_loss(&model, tuple);
            }
            EpochOutcome {
                loss,
                gradient_norm: None,
                shuffle_duration,
            }
        });

        TrainedModel {
            task_name: self.task.name(),
            model,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{LeastSquaresTask, LogisticRegressionTask, SvmTask};
    use bismarck_storage::{Column, DataType, Schema, Value};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// A small linearly separable classification table; `clustered` controls
    /// whether positives all precede negatives (the pathological order).
    fn classification_table(n: usize, clustered: bool, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("data", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for i in 0..n {
            let y = if i < n / 2 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.5 + rng.gen_range(-0.5..0.5),
                -y * 0.8 + rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ];
            rows.push((x, y));
        }
        if !clustered {
            // interleave classes
            rows.sort_by_key(|(x, _)| (x[2] * 1e6) as i64);
        }
        for (x, y) in rows {
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    #[test]
    fn lr_training_converges_and_reduces_loss() {
        let table = classification_table(200, false, 7);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::paper_default(40));
        let trainer = Trainer::new(&task, config);
        let initial = trainer.objective(&task.initial_model(), &table);
        let trained = trainer.train(&table);
        assert!(trained.epochs() >= 1);
        let final_loss = trained.final_loss().unwrap();
        assert!(
            final_loss < initial * 0.5,
            "final {final_loss} vs initial {initial}"
        );
        assert_eq!(trained.task_name, "LR");
    }

    #[test]
    fn svm_training_with_fixed_epochs_runs_exactly_that_many() {
        let table = classification_table(100, false, 3);
        let task = SvmTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.05))
            .with_convergence(ConvergenceTest::FixedEpochs(5));
        let trainer = Trainer::new(&task, config);
        let trained = trainer.train(&table);
        assert_eq!(trained.epochs(), 5);
    }

    #[test]
    fn shuffle_once_converges_in_fewer_epochs_than_clustered() {
        // The CA-TX phenomenon on a classification table clustered by label.
        let table = classification_table(400, true, 11);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let base = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.5))
            .with_convergence(ConvergenceTest::FixedEpochs(15));

        let clustered =
            Trainer::new(&task, base.with_scan_order(ScanOrder::Clustered)).train(&table);
        let shuffled = Trainer::new(
            &task,
            base.with_scan_order(ScanOrder::ShuffleOnce { seed: 5 }),
        )
        .train(&table);

        // Compare the loss reached after the same number of epochs.
        let target = shuffled.final_loss().unwrap();
        let clustered_final = clustered.final_loss().unwrap();
        assert!(
            target <= clustered_final * 1.05,
            "shuffled {target} should be no worse than clustered {clustered_final}"
        );
    }

    #[test]
    fn shuffle_always_records_shuffle_time_every_epoch() {
        let table = classification_table(100, false, 1);
        let task = LeastSquaresTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_scan_order(ScanOrder::ShuffleAlways { seed: 2 })
            .with_step_size(StepSizeSchedule::Constant(0.01))
            .with_convergence(ConvergenceTest::FixedEpochs(4));
        let trained = Trainer::new(&task, config).train(&table);
        let with_shuffle = trained
            .history
            .records()
            .iter()
            .filter(|r| r.shuffle_duration > Duration::ZERO)
            .count();
        assert_eq!(with_shuffle, 4);

        let once = TrainerConfig::default()
            .with_scan_order(ScanOrder::ShuffleOnce { seed: 2 })
            .with_step_size(StepSizeSchedule::Constant(0.01))
            .with_convergence(ConvergenceTest::FixedEpochs(4));
        let trained_once = Trainer::new(&task, once).train(&table);
        let with_shuffle_once = trained_once
            .history
            .records()
            .iter()
            .filter(|r| r.shuffle_duration > Duration::ZERO)
            .count();
        assert_eq!(with_shuffle_once, 1);
    }

    #[test]
    fn train_from_continues_from_previous_model() {
        let table = classification_table(100, false, 9);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(3));
        let trainer = Trainer::new(&task, config);
        let first = trainer.train(&table);
        let resumed = trainer.train_from(&table, first.model.clone());
        assert!(resumed.final_loss().unwrap() <= first.final_loss().unwrap() + 1e-9);
    }

    #[test]
    fn config_accessors() {
        let task = LeastSquaresTask::new(0, 1, 1);
        let config = TrainerConfig::default();
        let trainer = Trainer::new(&task, config);
        assert_eq!(trainer.config().scan_order.label(), "ShuffleOnce");
    }
}
