//! The sequential Bismarck trainer: epochs, data ordering, convergence and
//! fault tolerance.
//!
//! This is the single-threaded path of Figure 2: each epoch runs the IGD
//! aggregate over the table in the configured scan order, evaluates the loss,
//! and consults the convergence test. The three ordering policies of
//! Section 3.2 (Clustered, ShuffleOnce, ShuffleAlways) differ only in which
//! permutation — if any — is handed to the scan, and in how often the
//! (timed) shuffle cost is paid.
//!
//! On top of the epoch loop sits a fault-tolerant runtime in the spirit of
//! the RDBMS the trainer is meant to live inside: a panicking gradient pass
//! is isolated ([`TrainError::WorkerPanic`]), a diverged epoch (non-finite
//! model or loss) restores the last healthy snapshot and retries with a
//! smaller step size ([`BackoffPolicy`]), progress can be persisted every N
//! epochs ([`CheckpointPolicy`]) and picked back up with
//! [`Trainer::resume_from`], and a cooperative stop flag interrupts the run
//! at an epoch boundary. All of it stays off the per-tuple hot path: the
//! extra work is one `catch_unwind` frame, one O(d) snapshot and one O(d)
//! finiteness scan per *epoch*.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bismarck_storage::checkpoint::CheckpointError;
use bismarck_storage::{ScanOrder, TupleScan};
use bismarck_uda::{
    panic_message, run_sequential, ConvergenceTest, EpochOutcome, EpochRecord, EpochRunner,
    TrainingHistory,
};

use crate::checkpoint::TrainingCheckpoint;
use crate::error::TrainError;
use crate::governor::QueryGuard;
use crate::igd::IgdAggregate;
use crate::serving::{ModelHandle, PublishError};
use crate::stepsize::StepSizeSchedule;
use crate::task::IgdTask;

/// Divergence-recovery policy: how many times a run may restore its
/// last-good snapshot and shrink the step size after observing a non-finite
/// model or loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Total recovery budget for the run. Zero (the default) disables the
    /// machinery entirely: a diverged epoch is recorded as-is and the
    /// convergence test stops the run, un-converged.
    pub max_retries: u32,
    /// Multiplier applied to the effective step size on each recovery
    /// (`0.5` halves it, the classic backoff).
    pub factor: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_retries: 0,
            factor: 0.5,
        }
    }
}

/// When and where to persist training checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// File the checkpoint is (atomically and durably) written to; each
    /// write replaces the previous checkpoint, so this path always holds the
    /// newest one.
    pub path: PathBuf,
    /// Write after every `every` completed epochs. Zero disables writing.
    pub every: usize,
    /// How many checkpoints to retain (minimum 1). With `keep == 1` only
    /// [`CheckpointPolicy::path`] exists. With `keep > 1`, each write also
    /// produces an epoch-stamped sibling `<path>.e<N>` (so `path` always
    /// aliases the newest stamp), and stamps older than the newest `keep`
    /// are deleted — strictly *after* the newest write has been durably
    /// synced, so retention can never reduce the set of good checkpoints
    /// below `keep`.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Write `checkpoint` as the newest checkpoint, then apply retention.
    pub(crate) fn write(&self, checkpoint: &TrainingCheckpoint) -> Result<(), CheckpointError> {
        checkpoint.write(&self.path)?;
        if self.keep > 1 {
            checkpoint.write(&generation_path(&self.path, checkpoint.next_epoch))?;
            // Both writes above are durable (atomic temp → fsync → rename →
            // dir fsync), so pruning older generations is now safe. Pruning
            // itself is best-effort: a failure leaves extra checkpoints, not
            // missing ones.
            prune_generations(&self.path, self.keep);
        }
        Ok(())
    }
}

/// Epoch-stamped sibling of a checkpoint path: `model.ckpt` → `model.ckpt.e7`.
fn generation_path(path: &Path, epoch: usize) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".e{epoch}"));
    path.with_file_name(name)
}

/// The epoch stamp of `candidate` if it is a generation sibling of `path`.
fn generation_epoch(path: &Path, candidate: &Path) -> Option<usize> {
    let base = path.file_name()?.to_str()?;
    let name = candidate.file_name()?.to_str()?;
    name.strip_prefix(base)?.strip_prefix(".e")?.parse().ok()
}

/// Delete all but the newest `keep_generations` epoch-stamped siblings.
fn prune_generations(path: &Path, keep_generations: usize) {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(parent) else {
        return;
    };
    let mut generations: Vec<(usize, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let p = entry.path();
            generation_epoch(path, &p).map(|epoch| (epoch, p))
        })
        .collect();
    generations.sort_by_key(|g| std::cmp::Reverse(g.0));
    for (_, old) in generations.into_iter().skip(keep_generations) {
        let _ = std::fs::remove_file(old);
    }
}

/// Configuration shared by the sequential and parallel trainers.
///
/// Built with [`TrainerConfig::default`] plus the `with_*` builder methods,
/// each of which consumes and returns the config:
///
/// ```
/// use bismarck_core::trainer::TrainerConfig;
/// use bismarck_core::stepsize::StepSizeSchedule;
/// use bismarck_uda::ConvergenceTest;
///
/// let config = TrainerConfig::default()
///     .with_step_size(StepSizeSchedule::Constant(0.1))
///     .with_convergence(ConvergenceTest::FixedEpochs(5));
/// ```
///
/// `TrainerConfig` is `Clone` but — since the fault-tolerance work — **no
/// longer `Copy`**: the checkpoint policy owns a `PathBuf`, the stop flag is
/// an `Arc<AtomicBool>`, and the serving handle is an `Arc`-backed
/// [`ModelHandle`]. Code that used to copy a config implicitly must
/// `.clone()` it (cheap: the `Arc`s are reference-counted, not deep-copied;
/// note a cloned config *shares* its stop flag and serving handle with the
/// original).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Step-size schedule indexed by epoch.
    pub step_size: StepSizeSchedule,
    /// Data ordering policy.
    pub scan_order: ScanOrder,
    /// Stopping condition.
    pub convergence: ConvergenceTest,
    /// Divergence-recovery policy (disabled by default).
    pub backoff: BackoffPolicy,
    /// Periodic checkpointing policy (none by default).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Cooperative interrupt: when the flag becomes `true`, the run stops at
    /// the next epoch boundary with [`TrainError::Interrupted`] (after
    /// writing a final checkpoint if a policy is configured).
    pub stop_flag: Option<Arc<AtomicBool>>,
    /// Serving publication point: when set, the trainer publishes the model
    /// to this handle after every healthy epoch and re-asserts the last-good
    /// model after every divergence recovery, so concurrent readers never
    /// observe a non-finite model (none by default).
    pub serving: Option<ModelHandle>,
    /// Resource-governance guard: checked at every epoch boundary alongside
    /// the stop flag; a passed deadline or a cancellation ends the run with
    /// [`TrainError::Interrupted`] carrying the last-good model (none by
    /// default).
    pub guard: Option<QueryGuard>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            step_size: StepSizeSchedule::default(),
            scan_order: ScanOrder::ShuffleOnce { seed: 42 },
            convergence: ConvergenceTest::paper_default(20),
            backoff: BackoffPolicy::default(),
            checkpoint: None,
            stop_flag: None,
            serving: None,
            guard: None,
        }
    }
}

impl TrainerConfig {
    /// Builder-style override of the step-size schedule.
    pub fn with_step_size(mut self, step_size: StepSizeSchedule) -> Self {
        self.step_size = step_size;
        self
    }

    /// Builder-style override of the scan order.
    pub fn with_scan_order(mut self, scan_order: ScanOrder) -> Self {
        self.scan_order = scan_order;
        self
    }

    /// Builder-style override of the convergence test.
    pub fn with_convergence(mut self, convergence: ConvergenceTest) -> Self {
        self.convergence = convergence;
        self
    }

    /// Enable divergence recovery: up to `max_retries` restore-and-halve
    /// retries per run (see [`BackoffPolicy`]).
    ///
    /// ```
    /// use bismarck_core::trainer::TrainerConfig;
    ///
    /// let config = TrainerConfig::default().with_backoff(5);
    /// assert_eq!(config.backoff.max_retries, 5);
    /// assert_eq!(config.backoff.factor, 0.5); // each retry halves the step
    /// ```
    pub fn with_backoff(mut self, max_retries: u32) -> Self {
        self.backoff.max_retries = max_retries;
        self
    }

    /// Persist a checkpoint to `path` after every `every` completed epochs.
    ///
    /// ```
    /// use bismarck_core::trainer::TrainerConfig;
    ///
    /// let path = std::env::temp_dir().join("bismarck-doc-example.ckpt");
    /// let config = TrainerConfig::default().with_checkpoints(&path, 10);
    /// let policy = config.checkpoint.as_ref().unwrap();
    /// assert_eq!(policy.path, path);
    /// assert_eq!(policy.every, 10);
    /// ```
    pub fn with_checkpoints(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some(CheckpointPolicy {
            path: path.into(),
            every,
            keep: 1,
        });
        self
    }

    /// Like [`TrainerConfig::with_checkpoints`], but retains the `keep`
    /// newest checkpoints instead of only the latest: each write also leaves
    /// an epoch-stamped `<path>.e<N>` sibling, and older siblings are pruned
    /// only after the newest write is durably on disk.
    ///
    /// ```
    /// use bismarck_core::trainer::TrainerConfig;
    ///
    /// let path = std::env::temp_dir().join("bismarck-doc-retention.ckpt");
    /// let config = TrainerConfig::default().with_checkpoint_retention(&path, 10, 3);
    /// assert_eq!(config.checkpoint.as_ref().unwrap().keep, 3);
    /// ```
    pub fn with_checkpoint_retention(
        mut self,
        path: impl Into<PathBuf>,
        every: usize,
        keep: usize,
    ) -> Self {
        self.checkpoint = Some(CheckpointPolicy {
            path: path.into(),
            every,
            keep: keep.max(1),
        });
        self
    }

    /// Install a cooperative stop flag checked at every epoch boundary.
    ///
    /// Setting the flag makes the run stop with [`TrainError::Interrupted`],
    /// which carries the last completed epoch's model:
    ///
    /// ```
    /// use std::sync::atomic::{AtomicBool, Ordering};
    /// use std::sync::Arc;
    /// use bismarck_core::trainer::TrainerConfig;
    ///
    /// let stop = Arc::new(AtomicBool::new(false));
    /// let config = TrainerConfig::default().with_stop_flag(stop.clone());
    /// // ... hand `config` to a trainer on another thread, then:
    /// stop.store(true, Ordering::Relaxed);
    /// # assert!(config.stop_flag.is_some());
    /// ```
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }

    /// Publish every healthy epoch's model to `handle`, making it available
    /// to concurrent [`crate::serving`] readers while the run progresses.
    ///
    /// The handle's dimension must match the task's model dimension; the
    /// trainers check this once at the start of a run and report a mismatch
    /// as a failed run rather than publishing garbage.
    ///
    /// ```
    /// use bismarck_core::serving::{ModelHandle, ServingTask};
    /// use bismarck_core::trainer::TrainerConfig;
    ///
    /// let handle = ModelHandle::new(ServingTask::Logistic, 3);
    /// let config = TrainerConfig::default().with_serving(handle.clone());
    /// // `handle.snapshot()` on any thread now tracks the training run.
    /// # assert!(config.serving.is_some());
    /// ```
    pub fn with_serving(mut self, handle: ModelHandle) -> Self {
        self.serving = Some(handle);
        self
    }

    /// Run under a resource-governance [`QueryGuard`]: the trainers poll the
    /// guard at every epoch boundary (exactly where the stop flag is
    /// checked), so a deadline or a cancellation — including one issued by
    /// [`crate::governor::Governor::shutdown`] — ends the run at the next
    /// boundary with [`TrainError::Interrupted`] carrying the last completed
    /// epoch's model. Works under all four [`crate::ParallelStrategy`]
    /// disciplines.
    ///
    /// ```
    /// use std::time::Duration;
    /// use bismarck_core::governor::{QueryGuard, QueryLimits};
    /// use bismarck_core::trainer::TrainerConfig;
    ///
    /// let guard = QueryGuard::new(QueryLimits::none().with_timeout(Duration::from_millis(50)));
    /// let config = TrainerConfig::default().with_guard(guard.clone());
    /// # assert!(config.guard.is_some());
    /// ```
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = Some(guard);
        self
    }
}

/// A trained model plus the per-epoch history that produced it.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// Name of the task that produced the model.
    pub task_name: &'static str,
    /// The flat model vector.
    pub model: Vec<f64>,
    /// Per-epoch loss and timing records.
    pub history: TrainingHistory,
}

impl TrainedModel {
    /// Final objective value, if at least one epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.history.final_loss()
    }

    /// Number of epochs run.
    pub fn epochs(&self) -> usize {
        self.history.epochs()
    }
}

/// The sequential trainer.
///
/// Owns the epoch loop of Figure 2: scan the table in the configured
/// [`ScanOrder`], take one gradient step per tuple, evaluate the loss, and
/// consult the convergence test. End to end on a tiny separable problem:
///
/// ```
/// use bismarck_core::tasks::LogisticRegressionTask;
/// use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
/// use bismarck_storage::{Column, DataType, Schema, Table, Value};
/// use bismarck_uda::ConvergenceTest;
///
/// let schema = Schema::new(vec![
///     Column::new("vec", DataType::DenseVec),
///     Column::new("label", DataType::Double),
/// ])?;
/// let mut table = Table::new("points", schema);
/// for (x, y) in [([2.0, 0.5], 1.0), ([-1.5, 0.8], -1.0), ([1.0, 1.0], 1.0)] {
///     table.insert(vec![Value::from(x.to_vec()), Value::Double(y)])?;
/// }
///
/// let task = LogisticRegressionTask::new(0, 1, 2); // features col, label col, dim
/// let config = TrainerConfig::default()
///     .with_step_size(StepSizeSchedule::Constant(0.5))
///     .with_convergence(ConvergenceTest::FixedEpochs(20));
/// let trained = Trainer::new(&task, config).train(&table);
///
/// assert_eq!(trained.epochs(), 20);
/// assert!(trained.final_loss().unwrap() < 1.0);
/// assert!(trained.model[0] > 0.0); // label follows the first coordinate
/// # Ok::<(), bismarck_storage::StorageError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trainer<'a, T: IgdTask> {
    task: &'a T,
    config: TrainerConfig,
}

impl<'a, T: IgdTask> Trainer<'a, T> {
    /// Create a trainer for a task with the given configuration.
    pub fn new(task: &'a T, config: TrainerConfig) -> Self {
        Trainer { task, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Full objective (`Σ_i f_i(w) + P(w)`) of a model over a tuple source.
    pub fn objective<S: TupleScan + ?Sized>(&self, model: &[f64], data: &S) -> f64 {
        let mut total = self.task.regularizer(model);
        data.scan_tuples(&mut |tuple| total += self.task.example_loss(model, tuple));
        total
    }

    /// Train on a table starting from the task's initial model.
    ///
    /// Infallible wrapper over [`Self::try_train`] preserving the historical
    /// behavior: a failure (worker panic, exhausted divergence budget,
    /// checkpoint I/O error) panics with the error message, exactly as the
    /// pre-fault-tolerance trainer would have aborted. The one exception is a
    /// cooperative interrupt, which returns the last completed epoch's model
    /// — stopping on request is not a failure.
    pub fn train<S: TupleScan + ?Sized>(&self, data: &S) -> TrainedModel {
        unwrap_trained(self.try_train(data))
    }

    /// Train on a table starting from a caller-provided model (the paper's
    /// "a model returned by a previous run"). See [`Self::train`] for how
    /// failures surface.
    pub fn train_from<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        initial_model: Vec<f64>,
    ) -> TrainedModel {
        unwrap_trained(self.try_train_from(data, initial_model))
    }

    /// Fallible training from the task's initial model.
    pub fn try_train<S: TupleScan + ?Sized>(&self, data: &S) -> Result<TrainedModel, TrainError> {
        self.try_train_from(data, self.task.initial_model())
    }

    /// Fallible training from a caller-provided model.
    ///
    /// On failure, the returned [`TrainError`] carries the model of the last
    /// epoch that completed with a fully finite model and loss (the initial
    /// model if none did), plus the history of the completed epochs.
    pub fn try_train_from<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        initial_model: Vec<f64>,
    ) -> Result<TrainedModel, TrainError> {
        self.try_train_impl(data, initial_model, None)
    }

    /// Resume a checkpointed run, continuing bit-compatibly with an
    /// uninterrupted one: the resumed run replays the same tuple order (scan
    /// orders derive each epoch's permutation deterministically from their
    /// persisted seed), the same step sizes, and the same convergence
    /// decisions, so the final model is bitwise identical to a run that was
    /// never interrupted.
    ///
    /// The checkpoint must match this trainer: same task name, model
    /// dimension, scan order and step-size schedule; a mismatch reports
    /// [`CheckpointError::Corrupt`] via [`TrainError::Checkpoint`].
    pub fn resume_from<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        path: impl AsRef<Path>,
    ) -> Result<TrainedModel, TrainError> {
        let checkpoint = TrainingCheckpoint::read(path.as_ref())?;
        validate_checkpoint(&checkpoint, self.task, &self.config)?;
        let model = checkpoint.model.clone();
        let resume = ResumeState {
            next_epoch: checkpoint.next_epoch,
            alpha_scale: checkpoint.alpha_scale,
            retries_used: checkpoint.retries_used,
            losses: checkpoint.losses,
        };
        self.try_train_impl(data, model, Some(resume))
    }

    fn try_train_impl<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        initial_model: Vec<f64>,
        resume: Option<ResumeState>,
    ) -> Result<TrainedModel, TrainError> {
        let task = self.task;
        let config = &self.config;
        let (start_epoch, mut alpha_scale, mut retries_used, prior_losses) = match resume {
            Some(r) => (r.next_epoch, r.alpha_scale, r.retries_used, r.losses),
            None => (0, 1.0, 0, Vec::new()),
        };
        let mut model = initial_model;
        validate_serving(config, model.len())?;
        let mut last_good = model.clone();
        let mut losses_so_far = prior_losses.clone();
        // ShuffleOnce reuses one permutation; cache it so its cost is paid
        // exactly once and counted in the first epoch's shuffle time.
        let mut cached_permutation: Option<Vec<usize>> = None;
        let runner = EpochRunner::new(config.convergence);

        let (history, aborted) =
            runner.try_run_from(start_epoch, prior_records(&prior_losses), |epoch| {
                let mut epoch_retries = 0u32;
                loop {
                    if stop_requested(config) {
                        write_interrupt_checkpoint(
                            task,
                            config,
                            epoch,
                            &last_good,
                            alpha_scale,
                            retries_used,
                            &losses_so_far,
                        )?;
                        return Err(EpochAbort::Interrupted);
                    }

                    // 1. Reorder the data if the policy asks for it (timed).
                    let shuffle_start = Instant::now();
                    let permutation: Option<&[usize]> = match config.scan_order {
                        ScanOrder::Clustered => None,
                        ScanOrder::ShuffleOnce { .. } => {
                            if cached_permutation.is_none() {
                                cached_permutation =
                                    config.scan_order.permutation(data.tuple_count(), epoch);
                            }
                            cached_permutation.as_deref()
                        }
                        ScanOrder::ShuffleAlways { .. } => {
                            cached_permutation =
                                config.scan_order.permutation(data.tuple_count(), epoch);
                            cached_permutation.as_deref()
                        }
                    };
                    let shuffle_duration = if config.scan_order.shuffles_at(epoch) {
                        shuffle_start.elapsed()
                    } else {
                        Duration::ZERO
                    };

                    // 2. One epoch of IGD as a UDA, isolated from panics.
                    // Unwind safety: the closure owns the model it mutates
                    // (moved in) and only reads `task`/`data`/`permutation`;
                    // if it panics, the partially-updated model is discarded
                    // and `last_good` takes its place, so no torn state is
                    // ever observed afterwards.
                    let alpha = config.step_size.at(epoch) * alpha_scale;
                    let pass_model = std::mem::take(&mut model);
                    let pass = catch_unwind(AssertUnwindSafe(move || {
                        let aggregate = IgdAggregate::new(task, alpha, pass_model);
                        let state = run_sequential(&aggregate, data, permutation);
                        state.model.into_vec()
                    }));
                    match pass {
                        Ok(new_model) => model = new_model,
                        Err(payload) => {
                            return Err(EpochAbort::WorkerPanic {
                                failed_workers: 1,
                                message: panic_message(payload.as_ref()),
                            })
                        }
                    }

                    // 3. Evaluate the objective for the convergence test.
                    let mut loss = task.regularizer(&model);
                    data.scan_tuples(&mut |tuple| loss += task.example_loss(&model, tuple));

                    // 4. Divergence scan + recovery.
                    let healthy = loss.is_finite() && model.iter().all(|v| v.is_finite());
                    if !healthy {
                        if retries_used < config.backoff.max_retries {
                            retries_used += 1;
                            epoch_retries += 1;
                            alpha_scale *= config.backoff.factor;
                            model.clear();
                            model.extend_from_slice(&last_good);
                            // Re-assert the restored model to the serving
                            // handle: readers keep seeing a finite model
                            // while the retry runs.
                            publish_serving(config, &model);
                            continue;
                        }
                        if config.backoff.max_retries > 0 {
                            return Err(EpochAbort::Diverged {
                                retries: retries_used,
                            });
                        }
                        // Backoff disabled: record the diverged epoch; the
                        // convergence test stops the run, un-converged.
                    } else {
                        last_good.clear();
                        last_good.extend_from_slice(&model);
                        publish_serving(config, &model);
                    }
                    losses_so_far.push(loss);

                    // 5. Periodic checkpoint (healthy epochs only).
                    if healthy {
                        maybe_write_checkpoint(
                            task,
                            config,
                            epoch + 1,
                            &model,
                            alpha_scale,
                            retries_used,
                            &losses_so_far,
                        )?;
                    }
                    return Ok(EpochOutcome {
                        loss,
                        gradient_norm: None,
                        shuffle_duration,
                        retries: epoch_retries,
                    });
                }
            });

        let task_name = task.name();
        match aborted {
            None => Ok(TrainedModel {
                task_name,
                model,
                history,
            }),
            Some((epoch, abort)) => Err(abort.into_train_error(
                epoch,
                TrainedModel {
                    task_name,
                    model: last_good,
                    history,
                },
            )),
        }
    }
}

/// Resume state threaded from a checkpoint into the epoch loop.
pub(crate) struct ResumeState {
    pub(crate) next_epoch: usize,
    pub(crate) alpha_scale: f64,
    pub(crate) retries_used: u32,
    pub(crate) losses: Vec<f64>,
}

/// Internal abort reason raised inside the epoch closure; converted into a
/// [`TrainError`] (which additionally carries the last-good model) once the
/// partial history is available.
pub(crate) enum EpochAbort {
    WorkerPanic {
        failed_workers: usize,
        message: String,
    },
    Diverged {
        retries: u32,
    },
    Checkpoint(CheckpointError),
    Interrupted,
}

impl EpochAbort {
    pub(crate) fn into_train_error(self, epoch: usize, last_good: TrainedModel) -> TrainError {
        match self {
            EpochAbort::WorkerPanic {
                failed_workers,
                message,
            } => TrainError::WorkerPanic {
                epoch,
                failed_workers,
                message,
                last_good: Box::new(last_good),
            },
            EpochAbort::Diverged { retries } => TrainError::Diverged {
                epoch,
                retries,
                last_good: Box::new(last_good),
            },
            EpochAbort::Checkpoint(e) => TrainError::Checkpoint(e),
            EpochAbort::Interrupted => TrainError::Interrupted {
                epoch,
                last_good: Box::new(last_good),
            },
        }
    }
}

/// Unwrap a training result for the infallible `train` entry points: failures
/// panic (the historical behavior), a cooperative interrupt yields the last
/// completed epoch's model.
pub(crate) fn unwrap_trained(result: Result<TrainedModel, TrainError>) -> TrainedModel {
    match result {
        Ok(trained) => trained,
        Err(TrainError::Interrupted { last_good, .. }) => *last_good,
        Err(err) => panic!("training failed: {err}"),
    }
}

/// Synthesize zero-duration records for epochs restored from a checkpoint
/// (only losses are persisted; timings of the original run are not).
pub(crate) fn prior_records(losses: &[f64]) -> Vec<EpochRecord> {
    losses
        .iter()
        .enumerate()
        .map(|(epoch, &loss)| EpochRecord {
            epoch,
            loss,
            gradient_norm: None,
            duration: Duration::ZERO,
            shuffle_duration: Duration::ZERO,
            cumulative: Duration::ZERO,
            retries: 0,
        })
        .collect()
}

pub(crate) fn stop_requested(config: &TrainerConfig) -> bool {
    config
        .stop_flag
        .as_ref()
        .is_some_and(|flag| flag.load(Ordering::Relaxed))
        || config.guard.as_ref().is_some_and(QueryGuard::should_stop)
}

/// Reject a run whose serving handle cannot accept the task's models before
/// any epoch runs, so the in-loop publishes cannot fail.
pub(crate) fn validate_serving(config: &TrainerConfig, dimension: usize) -> Result<(), TrainError> {
    match &config.serving {
        Some(handle) if handle.dimension() != dimension => {
            Err(TrainError::Serving(PublishError::DimensionMismatch {
                expected: handle.dimension(),
                got: dimension,
            }))
        }
        _ => Ok(()),
    }
}

/// Publish a healthy (finite, dimension-checked) model to the serving
/// handle, if one is configured.
pub(crate) fn publish_serving(config: &TrainerConfig, model: &[f64]) {
    if let Some(handle) = &config.serving {
        handle
            .publish(model)
            .expect("dimension validated at run start and only finite models are published");
    }
}

/// Reject a checkpoint that was not produced by an equivalent run: resuming
/// under a different task, dimension, scan order or step-size schedule would
/// silently break bit-compatibility.
pub(crate) fn validate_checkpoint<T: IgdTask>(
    checkpoint: &TrainingCheckpoint,
    task: &T,
    config: &TrainerConfig,
) -> Result<(), TrainError> {
    let corrupt = |msg: String| TrainError::Checkpoint(CheckpointError::Corrupt(msg));
    if checkpoint.task_name != task.name() {
        return Err(corrupt(format!(
            "checkpoint is for task '{}', trainer runs '{}'",
            checkpoint.task_name,
            task.name()
        )));
    }
    if checkpoint.model.len() != task.dimension() {
        return Err(corrupt(format!(
            "checkpoint model has dimension {}, task expects {}",
            checkpoint.model.len(),
            task.dimension()
        )));
    }
    if checkpoint.scan_order != config.scan_order {
        return Err(corrupt(format!(
            "checkpoint scan order {:?} differs from the trainer's {:?}",
            checkpoint.scan_order, config.scan_order
        )));
    }
    if checkpoint.step_size != config.step_size {
        return Err(corrupt(format!(
            "checkpoint step-size schedule {:?} differs from the trainer's {:?}",
            checkpoint.step_size, config.step_size
        )));
    }
    Ok(())
}

/// Write a checkpoint if the policy's cadence says this epoch boundary is due.
#[allow(clippy::too_many_arguments)]
pub(crate) fn maybe_write_checkpoint<T: IgdTask>(
    task: &T,
    config: &TrainerConfig,
    next_epoch: usize,
    model: &[f64],
    alpha_scale: f64,
    retries_used: u32,
    losses: &[f64],
) -> Result<(), EpochAbort> {
    let Some(policy) = &config.checkpoint else {
        return Ok(());
    };
    if policy.every == 0 || !next_epoch.is_multiple_of(policy.every) {
        return Ok(());
    }
    policy
        .write(&build_checkpoint(
            task,
            config,
            next_epoch,
            model,
            alpha_scale,
            retries_used,
            losses,
        ))
        .map_err(EpochAbort::Checkpoint)
}

/// Write a checkpoint unconditionally at an interrupt point (if a policy is
/// configured), so the interrupted run can be resumed without losing the
/// epochs since the last periodic write.
pub(crate) fn write_interrupt_checkpoint<T: IgdTask>(
    task: &T,
    config: &TrainerConfig,
    next_epoch: usize,
    model: &[f64],
    alpha_scale: f64,
    retries_used: u32,
    losses: &[f64],
) -> Result<(), EpochAbort> {
    let Some(policy) = &config.checkpoint else {
        return Ok(());
    };
    policy
        .write(&build_checkpoint(
            task,
            config,
            next_epoch,
            model,
            alpha_scale,
            retries_used,
            losses,
        ))
        .map_err(EpochAbort::Checkpoint)
}

fn build_checkpoint<T: IgdTask>(
    task: &T,
    config: &TrainerConfig,
    next_epoch: usize,
    model: &[f64],
    alpha_scale: f64,
    retries_used: u32,
    losses: &[f64],
) -> TrainingCheckpoint {
    TrainingCheckpoint {
        task_name: task.name().to_string(),
        next_epoch,
        model: model.to_vec(),
        alpha_scale,
        retries_used,
        losses: losses.to_vec(),
        scan_order: config.scan_order,
        step_size: config.step_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{LeastSquaresTask, LogisticRegressionTask, SvmTask};
    use bismarck_storage::{Column, DataType, Schema, Table, Value};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// A small linearly separable classification table; `clustered` controls
    /// whether positives all precede negatives (the pathological order).
    fn classification_table(n: usize, clustered: bool, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("data", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for i in 0..n {
            let y = if i < n / 2 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.5 + rng.gen_range(-0.5..0.5),
                -y * 0.8 + rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ];
            rows.push((x, y));
        }
        if !clustered {
            // interleave classes
            rows.sort_by_key(|(x, _)| (x[2] * 1e6) as i64);
        }
        for (x, y) in rows {
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    #[test]
    fn lr_training_converges_and_reduces_loss() {
        let table = classification_table(200, false, 7);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::paper_default(40));
        let trainer = Trainer::new(&task, config);
        let initial = trainer.objective(&task.initial_model(), &table);
        let trained = trainer.train(&table);
        assert!(trained.epochs() >= 1);
        let final_loss = trained.final_loss().unwrap();
        assert!(
            final_loss < initial * 0.5,
            "final {final_loss} vs initial {initial}"
        );
        assert_eq!(trained.task_name, "LR");
    }

    #[test]
    fn svm_training_with_fixed_epochs_runs_exactly_that_many() {
        let table = classification_table(100, false, 3);
        let task = SvmTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.05))
            .with_convergence(ConvergenceTest::FixedEpochs(5));
        let trainer = Trainer::new(&task, config);
        let trained = trainer.train(&table);
        assert_eq!(trained.epochs(), 5);
    }

    #[test]
    fn shuffle_once_converges_in_fewer_epochs_than_clustered() {
        // The CA-TX phenomenon on a classification table clustered by label.
        let table = classification_table(400, true, 11);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let base = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.5))
            .with_convergence(ConvergenceTest::FixedEpochs(15));

        let clustered =
            Trainer::new(&task, base.clone().with_scan_order(ScanOrder::Clustered)).train(&table);
        let shuffled = Trainer::new(
            &task,
            base.with_scan_order(ScanOrder::ShuffleOnce { seed: 5 }),
        )
        .train(&table);

        // Compare the loss reached after the same number of epochs.
        let target = shuffled.final_loss().unwrap();
        let clustered_final = clustered.final_loss().unwrap();
        assert!(
            target <= clustered_final * 1.05,
            "shuffled {target} should be no worse than clustered {clustered_final}"
        );
    }

    #[test]
    fn shuffle_always_records_shuffle_time_every_epoch() {
        let table = classification_table(100, false, 1);
        let task = LeastSquaresTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_scan_order(ScanOrder::ShuffleAlways { seed: 2 })
            .with_step_size(StepSizeSchedule::Constant(0.01))
            .with_convergence(ConvergenceTest::FixedEpochs(4));
        let trained = Trainer::new(&task, config).train(&table);
        let with_shuffle = trained
            .history
            .records()
            .iter()
            .filter(|r| r.shuffle_duration > Duration::ZERO)
            .count();
        assert_eq!(with_shuffle, 4);

        let once = TrainerConfig::default()
            .with_scan_order(ScanOrder::ShuffleOnce { seed: 2 })
            .with_step_size(StepSizeSchedule::Constant(0.01))
            .with_convergence(ConvergenceTest::FixedEpochs(4));
        let trained_once = Trainer::new(&task, once).train(&table);
        let with_shuffle_once = trained_once
            .history
            .records()
            .iter()
            .filter(|r| r.shuffle_duration > Duration::ZERO)
            .count();
        assert_eq!(with_shuffle_once, 1);
    }

    #[test]
    fn train_from_continues_from_previous_model() {
        let table = classification_table(100, false, 9);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(3));
        let trainer = Trainer::new(&task, config);
        let first = trainer.train(&table);
        let resumed = trainer.train_from(&table, first.model.clone());
        assert!(resumed.final_loss().unwrap() <= first.final_loss().unwrap() + 1e-9);
    }

    #[test]
    fn config_accessors() {
        let task = LeastSquaresTask::new(0, 1, 1);
        let config = TrainerConfig::default();
        let trainer = Trainer::new(&task, config);
        assert_eq!(trainer.config().scan_order.label(), "ShuffleOnce");
    }

    fn temp_ckpt(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "bismarck-trainer-{}-{name}.ckpt",
            std::process::id()
        ));
        p
    }

    #[test]
    fn divergent_step_size_stops_early_without_backoff() {
        // A wildly oversized constant step makes least squares blow up; the
        // fixed convergence semantics stop the run at the first non-finite
        // loss instead of spinning to the cap, and the run is not converged.
        let table = classification_table(100, false, 21);
        let task = LeastSquaresTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(1e12))
            .with_convergence(ConvergenceTest::paper_default(500));
        let trained = Trainer::new(&task, config).try_train(&table).unwrap();
        assert!(trained.epochs() < 500, "must not spin to the cap");
        assert!(!trained.history.converged());
        assert!(!trained.final_loss().unwrap().is_finite());
    }

    #[test]
    fn backoff_recovers_a_divergent_run() {
        let table = classification_table(100, false, 21);
        let task = LeastSquaresTask::new(0, 1, 3);
        // Diverges at full step size; the backoff halves it until the run is
        // stable, restoring the last-good (here: initial) model each time.
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(20.0))
            .with_convergence(ConvergenceTest::FixedEpochs(6))
            .with_backoff(40);
        let trained = Trainer::new(&task, config).try_train(&table).unwrap();
        let final_loss = trained.final_loss().unwrap();
        assert!(final_loss.is_finite());
        assert!(trained.model.iter().all(|v| v.is_finite()));
        let retries = trained.history.total_retries();
        assert!(retries > 0, "the run must actually have backed off");
        assert!(
            trained.history.records().iter().any(|r| r.retries > 0),
            "recoveries must be attributed to the epoch that needed them"
        );
    }

    #[test]
    fn exhausted_backoff_budget_reports_divergence_with_last_good_model() {
        let table = classification_table(100, false, 21);
        let task = LeastSquaresTask::new(0, 1, 3);
        // A budget of 1 cannot save a step size this hot.
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(1e30))
            .with_convergence(ConvergenceTest::FixedEpochs(6))
            .with_backoff(1);
        let err = Trainer::new(&task, config)
            .try_train(&table)
            .expect_err("budget of 1 must be exhausted");
        match &err {
            TrainError::Diverged {
                retries, last_good, ..
            } => {
                assert_eq!(*retries, 1);
                assert!(last_good.model.iter().all(|v| v.is_finite()));
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn stop_flag_interrupts_at_an_epoch_boundary() {
        let table = classification_table(100, false, 9);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let flag = Arc::new(AtomicBool::new(false));
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(50))
            .with_stop_flag(flag.clone());
        flag.store(true, Ordering::Relaxed);
        let err = Trainer::new(&task, config)
            .try_train(&table)
            .expect_err("pre-set flag must interrupt immediately");
        match err {
            TrainError::Interrupted { epoch, last_good } => {
                assert_eq!(epoch, 0);
                assert_eq!(last_good.epochs(), 0);
            }
            other => panic!("expected Interrupted, got {other}"),
        }
    }

    #[test]
    fn checkpoints_are_written_on_schedule_and_resume_continues() {
        let path = temp_ckpt("on-schedule");
        let table = classification_table(120, false, 13);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(10))
            .with_checkpoints(&path, 4);
        let trainer = Trainer::new(&task, config);
        let full = trainer.try_train(&table).unwrap();

        // The surviving checkpoint is the one written after epoch 8.
        let cp = crate::checkpoint::TrainingCheckpoint::read(&path).unwrap();
        assert_eq!(cp.next_epoch, 8);
        assert_eq!(cp.losses.len(), 8);
        assert_eq!(cp.task_name, "LR");

        // Resuming runs epochs 8 and 9 and lands on the exact same model.
        let resumed = trainer.resume_from(&table, &path).unwrap();
        assert_eq!(resumed.epochs(), 10);
        assert_eq!(
            resumed.model, full.model,
            "resume must be bit-compatible with the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_retention_keeps_last_k_generations() {
        let dir = std::env::temp_dir().join(format!(
            "bismarck-ckpt-retention-test-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let table = classification_table(120, false, 13);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(10))
            .with_checkpoint_retention(&path, 2, 3);
        Trainer::new(&task, config).try_train(&table).unwrap();

        // Writes happened after epochs 2, 4, 6, 8 and 10; with keep = 3 the
        // three newest stamps survive (path aliases the newest) and the
        // epoch-2 and epoch-4 stamps are pruned.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "model.ckpt".to_string(),
                "model.ckpt.e10".to_string(),
                "model.ckpt.e6".to_string(),
                "model.ckpt.e8".to_string(),
            ]
        );
        // Every retained generation is independently readable.
        for name in ["model.ckpt.e6", "model.ckpt.e8", "model.ckpt.e10"] {
            let cp = crate::checkpoint::TrainingCheckpoint::read(&dir.join(name)).unwrap();
            assert_eq!(cp.task_name, "LR");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_trainer() {
        let path = temp_ckpt("mismatch");
        let table = classification_table(60, false, 3);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.1))
            .with_convergence(ConvergenceTest::FixedEpochs(4))
            .with_checkpoints(&path, 2);
        Trainer::new(&task, config.clone())
            .try_train(&table)
            .unwrap();

        // Different step size ⇒ the resumed run would not be bit-compatible.
        let other = config.with_step_size(StepSizeSchedule::Constant(0.05));
        let err = Trainer::new(&task, other)
            .resume_from(&table, &path)
            .expect_err("step-size mismatch must be rejected");
        assert!(matches!(err, TrainError::Checkpoint(_)), "{err}");

        // Different task ⇒ rejected by name before anything runs.
        let svm = SvmTask::new(0, 1, 3);
        let svm_config = TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.1))
            .with_convergence(ConvergenceTest::FixedEpochs(4));
        let err = Trainer::new(&svm, svm_config)
            .resume_from(&table, &path)
            .expect_err("task mismatch must be rejected");
        assert!(err.to_string().contains("task"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
