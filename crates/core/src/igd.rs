//! Incremental gradient descent packaged as a user-defined aggregate.
//!
//! This is the heart of the paper's architecture (Section 3.1): the UDA state
//! is the model (plus a step counter), `transition` performs one gradient
//! step on one tuple, `terminate` returns the model, and `merge` combines two
//! independently-trained models by (count-weighted) averaging — the
//! Zinkevich-style model averaging that makes IGD "essentially algebraic"
//! and therefore usable with the engine's shared-nothing parallel
//! aggregation.

use bismarck_storage::Tuple;
use bismarck_uda::Aggregate;

use crate::model::DenseModelStore;
use crate::task::{IgdTask, ProximalPolicy};

/// Aggregation state: the model being learned plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct IgdState {
    /// The flat model vector.
    pub model: DenseModelStore,
    /// Number of gradient steps taken so far in this aggregation.
    pub steps: u64,
}

impl IgdState {
    /// Wrap an existing model with a zero step count.
    pub fn from_model(model: Vec<f64>) -> Self {
        IgdState {
            model: DenseModelStore::new(model),
            steps: 0,
        }
    }
}

/// How partial models from different segments are combined by `merge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Weight each partial model by the number of gradient steps it took
    /// (segments of unequal size contribute proportionally).
    #[default]
    CountWeighted,
    /// Plain unweighted average of the two partial models.
    Unweighted,
}

/// IGD as a UDA over a single epoch.
///
/// The aggregate is configured with the task, the step size to use for this
/// epoch, and the model produced by the previous epoch (or the task's initial
/// model for epoch 0).
#[derive(Debug, Clone)]
pub struct IgdAggregate<'a, T: IgdTask> {
    task: &'a T,
    alpha: f64,
    starting_model: Vec<f64>,
    merge_strategy: MergeStrategy,
}

impl<'a, T: IgdTask> IgdAggregate<'a, T> {
    /// Create an aggregate for one epoch.
    pub fn new(task: &'a T, alpha: f64, starting_model: Vec<f64>) -> Self {
        IgdAggregate {
            task,
            alpha,
            starting_model,
            merge_strategy: MergeStrategy::default(),
        }
    }

    /// Override the merge strategy (used by the merge-strategy ablation).
    pub fn with_merge_strategy(mut self, strategy: MergeStrategy) -> Self {
        self.merge_strategy = strategy;
        self
    }

    /// The step size this aggregate applies.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl<T: IgdTask> Aggregate for IgdAggregate<'_, T> {
    type State = IgdState;
    type Output = IgdState;

    fn initialize(&self) -> IgdState {
        IgdState::from_model(self.starting_model.clone())
    }

    fn transition(&self, state: &mut IgdState, tuple: &Tuple) {
        self.task.gradient_step(&mut state.model, tuple, self.alpha);
        state.steps += 1;
        if self.task.proximal_policy() == ProximalPolicy::PerStep {
            self.task
                .proximal_step(state.model.as_mut_slice(), self.alpha);
        }
    }

    fn merge(&self, left: &mut IgdState, right: IgdState) {
        let (wl, wr) = match self.merge_strategy {
            MergeStrategy::CountWeighted => (left.steps as f64, right.steps as f64),
            MergeStrategy::Unweighted => (1.0, 1.0),
        };
        let total_steps = left.steps + right.steps;
        if wl + wr <= 0.0 {
            left.steps = total_steps;
            return;
        }
        let denom = wl + wr;
        let left_slice = left.model.as_mut_slice();
        let right_slice = right.model.as_slice();
        let n = left_slice.len().min(right_slice.len());
        for i in 0..n {
            left_slice[i] = (left_slice[i] * wl + right_slice[i] * wr) / denom;
        }
        left.steps = total_steps;
    }

    fn terminate(&self, mut state: IgdState) -> IgdState {
        if self.task.proximal_policy() == ProximalPolicy::PerEpoch {
            self.task
                .proximal_step(state.model.as_mut_slice(), self.alpha);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelStore;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};
    use bismarck_uda::{run_segmented, run_segmented_parallel, run_sequential};

    /// 1-D mean estimation used to exercise the aggregate plumbing.
    struct MeanTask {
        prox: ProximalPolicy,
    }

    impl IgdTask for MeanTask {
        fn name(&self) -> &'static str {
            "MEAN"
        }
        fn dimension(&self) -> usize {
            1
        }
        fn gradient_step(&self, model: &mut dyn ModelStore, tuple: &Tuple, alpha: f64) {
            let y = tuple.get_double(0).unwrap_or(0.0);
            let w = model.read(0);
            model.update(0, -alpha * (w - y));
        }
        fn example_loss(&self, model: &[f64], tuple: &Tuple) -> f64 {
            let y = tuple.get_double(0).unwrap_or(0.0);
            0.5 * (model[0] - y).powi(2)
        }
        fn proximal_step(&self, model: &mut [f64], _alpha: f64) {
            // clamp to [-1, 1] — a toy projection so tests can observe policy
            for v in model.iter_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
        }
        fn proximal_policy(&self) -> ProximalPolicy {
            self.prox
        }
    }

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Column::new("y", DataType::Double)]).unwrap();
        let mut t = Table::new("t", schema);
        for &v in values {
            t.insert(vec![Value::Double(v)]).unwrap();
        }
        t
    }

    #[test]
    fn one_epoch_moves_model_and_counts_steps() {
        let t = table(&[1.0; 50]);
        let task = MeanTask {
            prox: ProximalPolicy::None,
        };
        let agg = IgdAggregate::new(&task, 0.1, vec![0.0]);
        let out = run_sequential(&agg, &t, None);
        assert_eq!(out.steps, 50);
        assert!(out.model.read(0) > 0.5, "model should move towards 1.0");
        assert!(out.model.read(0) <= 1.0);
    }

    #[test]
    fn per_step_proximal_is_applied() {
        let t = table(&[100.0; 5]);
        let task = MeanTask {
            prox: ProximalPolicy::PerStep,
        };
        let agg = IgdAggregate::new(&task, 1.0, vec![0.0]);
        let out = run_sequential(&agg, &t, None);
        // Each step would jump to 100 without the projection; the per-step
        // clamp keeps the model inside [-1, 1].
        assert!(out.model.read(0) <= 1.0 + 1e-12);
    }

    #[test]
    fn per_epoch_proximal_applied_only_at_terminate() {
        let t = table(&[100.0; 5]);
        let task = MeanTask {
            prox: ProximalPolicy::PerEpoch,
        };
        let agg = IgdAggregate::new(&task, 1.0, vec![0.0]);
        let out = run_sequential(&agg, &t, None);
        assert!(out.model.read(0) <= 1.0 + 1e-12);
    }

    #[test]
    fn merge_is_count_weighted_average() {
        let task = MeanTask {
            prox: ProximalPolicy::None,
        };
        let agg = IgdAggregate::new(&task, 0.1, vec![0.0]);
        let mut left = IgdState {
            model: DenseModelStore::new(vec![1.0]),
            steps: 3,
        };
        let right = IgdState {
            model: DenseModelStore::new(vec![5.0]),
            steps: 1,
        };
        agg.merge(&mut left, right);
        assert!((left.model.read(0) - 2.0).abs() < 1e-12);
        assert_eq!(left.steps, 4);
    }

    #[test]
    fn unweighted_merge_is_midpoint() {
        let task = MeanTask {
            prox: ProximalPolicy::None,
        };
        let agg =
            IgdAggregate::new(&task, 0.1, vec![0.0]).with_merge_strategy(MergeStrategy::Unweighted);
        let mut left = IgdState {
            model: DenseModelStore::new(vec![1.0]),
            steps: 3,
        };
        let right = IgdState {
            model: DenseModelStore::new(vec![5.0]),
            steps: 1,
        };
        agg.merge(&mut left, right);
        assert!((left.model.read(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_zero_steps_keeps_left() {
        let task = MeanTask {
            prox: ProximalPolicy::None,
        };
        let agg = IgdAggregate::new(&task, 0.1, vec![0.0]);
        let mut left = IgdState {
            model: DenseModelStore::new(vec![2.0]),
            steps: 0,
        };
        let right = IgdState {
            model: DenseModelStore::new(vec![4.0]),
            steps: 0,
        };
        agg.merge(&mut left, right);
        assert_eq!(left.model.read(0), 2.0);
        assert_eq!(left.steps, 0);
    }

    #[test]
    fn segmented_execution_approximates_sequential() {
        // On a quadratic objective the count-weighted model average after one
        // epoch lands close to the sequential result.
        let values: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let t = table(&values);
        let task = MeanTask {
            prox: ProximalPolicy::None,
        };
        let agg = IgdAggregate::new(&task, 0.05, vec![0.5]);
        let seq = run_sequential(&agg, &t, None);
        let seg = run_segmented(&agg, &t, 4);
        let par = run_segmented_parallel(&agg, &t, 4);
        assert_eq!(seg.steps, 200);
        assert_eq!(par.steps, 200);
        assert!((seq.model.read(0) - seg.model.read(0)).abs() < 0.2);
        // Deterministic plan: parallel and sequential segmented agree exactly.
        assert!((par.model.read(0) - seg.model.read(0)).abs() < 1e-12);
    }
}
