//! Trainer-level checkpoint payload.
//!
//! The container (magic, version, checksum, atomic write) lives in
//! [`bismarck_storage::checkpoint`]; this module defines what goes *inside*:
//! everything needed to continue a training run bit-compatibly with an
//! uninterrupted one — the model vector, the epoch counter, the loss history
//! seen so far (the convergence test consults it), the step-size backoff
//! state, and the scan-order/step-size configuration the run was started
//! with. Scan orders derive every epoch's permutation deterministically from
//! `(seed, epoch)`, so persisting the seed is enough to replay the exact
//! tuple order after a resume; there is no other RNG state in the sequential
//! path.
//!
//! All integers are little-endian; `f64`s are stored as their IEEE-754 bit
//! patterns so `NaN` losses survive a round trip unchanged.

use std::path::Path;

use bismarck_storage::checkpoint::{read_checkpoint, write_checkpoint, CheckpointError};
use bismarck_storage::ScanOrder;

use crate::stepsize::StepSizeSchedule;

/// Resumable state of a training run, as persisted every N epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCheckpoint {
    /// `IgdTask::name()` of the task that produced the checkpoint.
    pub task_name: String,
    /// The next epoch to run (equivalently: number of epochs completed).
    pub next_epoch: usize,
    /// Model vector after `next_epoch` epochs.
    pub model: Vec<f64>,
    /// Multiplier the divergence backoff has applied to the step size.
    pub alpha_scale: f64,
    /// Divergence recoveries consumed so far (counts against the budget).
    pub retries_used: u32,
    /// Loss after each completed epoch (`losses.len() == next_epoch`).
    pub losses: Vec<f64>,
    /// Scan order of the original run; a resume must use the same one to be
    /// bit-compatible.
    pub scan_order: ScanOrder,
    /// Step-size schedule of the original run.
    pub step_size: StepSizeSchedule,
}

/// Incremental little-endian reader over a checkpoint payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let len = self.u64()? as usize;
        // Guard against a length field larger than the remaining payload so
        // a corrupt file cannot request an absurd allocation.
        if len > self.bytes.len().saturating_sub(self.pos) / 8 {
            return Err(CheckpointError::Truncated);
        }
        (0..len).map(|_| self.f64()).collect()
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt("trailing bytes in payload".into()))
        }
    }
}

fn push_f64_vec(out: &mut Vec<u8>, values: &[f64]) {
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn encode_scan_order(out: &mut Vec<u8>, order: ScanOrder) {
    let (tag, seed) = match order {
        ScanOrder::Clustered => (0u8, 0u64),
        ScanOrder::ShuffleOnce { seed } => (1, seed),
        ScanOrder::ShuffleAlways { seed } => (2, seed),
    };
    out.push(tag);
    out.extend_from_slice(&seed.to_le_bytes());
}

fn decode_scan_order(r: &mut Reader<'_>) -> Result<ScanOrder, CheckpointError> {
    let tag = r.u8()?;
    let seed = r.u64()?;
    match tag {
        0 => Ok(ScanOrder::Clustered),
        1 => Ok(ScanOrder::ShuffleOnce { seed }),
        2 => Ok(ScanOrder::ShuffleAlways { seed }),
        other => Err(CheckpointError::Corrupt(format!(
            "unknown scan-order tag {other}"
        ))),
    }
}

fn encode_step_size(out: &mut Vec<u8>, schedule: StepSizeSchedule) {
    let (tag, a, b) = match schedule {
        StepSizeSchedule::Constant(alpha) => (0u8, alpha, 0.0),
        StepSizeSchedule::Diminishing { initial } => (1, initial, 0.0),
        StepSizeSchedule::Geometric { initial, decay } => (2, initial, decay),
    };
    out.push(tag);
    out.extend_from_slice(&a.to_bits().to_le_bytes());
    out.extend_from_slice(&b.to_bits().to_le_bytes());
}

fn decode_step_size(r: &mut Reader<'_>) -> Result<StepSizeSchedule, CheckpointError> {
    let tag = r.u8()?;
    let a = r.f64()?;
    let b = r.f64()?;
    match tag {
        0 => Ok(StepSizeSchedule::Constant(a)),
        1 => Ok(StepSizeSchedule::Diminishing { initial: a }),
        2 => Ok(StepSizeSchedule::Geometric {
            initial: a,
            decay: b,
        }),
        other => Err(CheckpointError::Corrupt(format!(
            "unknown step-size tag {other}"
        ))),
    }
}

impl TrainingCheckpoint {
    /// Serialize to the checkpoint payload format.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * (self.model.len() + self.losses.len()));
        out.extend_from_slice(&(self.task_name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.task_name.as_bytes());
        out.extend_from_slice(&(self.next_epoch as u64).to_le_bytes());
        out.extend_from_slice(&self.alpha_scale.to_bits().to_le_bytes());
        out.extend_from_slice(&self.retries_used.to_le_bytes());
        encode_scan_order(&mut out, self.scan_order);
        encode_step_size(&mut out, self.step_size);
        push_f64_vec(&mut out, &self.model);
        push_f64_vec(&mut out, &self.losses);
        out
    }

    /// Decode a checkpoint payload (the inverse of [`Self::to_payload`]).
    pub fn from_payload(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(bytes);
        let name_len = r.u32()? as usize;
        let task_name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CheckpointError::Corrupt("task name is not UTF-8".into()))?
            .to_string();
        let next_epoch = r.u64()? as usize;
        let alpha_scale = r.f64()?;
        let retries_used = r.u32()?;
        let scan_order = decode_scan_order(&mut r)?;
        let step_size = decode_step_size(&mut r)?;
        let model = r.f64_vec()?;
        let losses = r.f64_vec()?;
        r.finish()?;
        let checkpoint = TrainingCheckpoint {
            task_name,
            next_epoch,
            model,
            alpha_scale,
            retries_used,
            losses,
            scan_order,
            step_size,
        };
        if checkpoint.losses.len() != checkpoint.next_epoch {
            return Err(CheckpointError::Corrupt(format!(
                "{} losses recorded for {} completed epochs",
                checkpoint.losses.len(),
                checkpoint.next_epoch
            )));
        }
        Ok(checkpoint)
    }

    /// Write this checkpoint atomically to `path`.
    pub fn write(&self, path: &Path) -> Result<(), CheckpointError> {
        write_checkpoint(path, &self.to_payload())
    }

    /// Read and validate a checkpoint from `path`.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_payload(&read_checkpoint(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingCheckpoint {
        TrainingCheckpoint {
            task_name: "SVM".into(),
            next_epoch: 3,
            model: vec![0.5, -1.25, f64::MIN_POSITIVE],
            alpha_scale: 0.25,
            retries_used: 2,
            losses: vec![10.0, f64::NAN, 4.0],
            scan_order: ScanOrder::ShuffleAlways { seed: 99 },
            step_size: StepSizeSchedule::Geometric {
                initial: 0.1,
                decay: 0.9,
            },
        }
    }

    #[test]
    fn payload_round_trips_including_nan_bits() {
        let cp = sample();
        let decoded = TrainingCheckpoint::from_payload(&cp.to_payload()).unwrap();
        assert_eq!(decoded.task_name, cp.task_name);
        assert_eq!(decoded.next_epoch, cp.next_epoch);
        assert_eq!(decoded.model, cp.model);
        assert_eq!(decoded.alpha_scale, cp.alpha_scale);
        assert_eq!(decoded.retries_used, cp.retries_used);
        assert_eq!(decoded.scan_order, cp.scan_order);
        assert_eq!(decoded.step_size, cp.step_size);
        // NaN != NaN, so compare the bit patterns.
        let bits: Vec<u64> = decoded.losses.iter().map(|l| l.to_bits()).collect();
        let expected: Vec<u64> = cp.losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn file_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("bismarck-core-ckpt-{}.ckpt", std::process::id()));
        let cp = sample();
        cp.write(&path).unwrap();
        let back = TrainingCheckpoint::read(&path).unwrap();
        assert_eq!(back.model, cp.model);
        assert_eq!(back.next_epoch, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let payload = sample().to_payload();
        for cut in [0, 3, 10, payload.len() - 1] {
            assert!(
                TrainingCheckpoint::from_payload(&payload[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tags() {
        let mut payload = sample().to_payload();
        payload.push(0xFF);
        assert!(matches!(
            TrainingCheckpoint::from_payload(&payload),
            Err(CheckpointError::Corrupt(_))
        ));

        let mut cp = sample();
        cp.losses.pop();
        cp.next_epoch = 3; // now inconsistent with 2 losses
        assert!(matches!(
            TrainingCheckpoint::from_payload(&cp.to_payload()),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
