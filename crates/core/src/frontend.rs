//! SQL-style front-end functions.
//!
//! Section 2.1: the end-user trains a model with a query like
//! `SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')` and the
//! learned coefficients are "persisted as a user table 'myModel'". These
//! functions are the Rust equivalents: they resolve column names against the
//! catalog, infer the model dimension from the data, run the Bismarck
//! trainer, and write the model back into the database so it can be applied
//! to new data with the matching `*_predict` function.

use bismarck_storage::{Column, DataType, Database, Schema, StorageError, Table, TupleScan, Value};
use bismarck_uda::TrainingHistory;

use crate::error::TrainError;
use crate::task::IgdTask;
use crate::tasks::{CrfTask, LmfTask, LogisticRegressionTask, SvmTask};
use crate::trainer::{Trainer, TrainerConfig};

/// Errors surfaced by the front-end functions.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// A catalog or schema problem (missing table/column, bad types, ...).
    Storage(StorageError),
    /// The training table is empty or otherwise unusable.
    InvalidInput(String),
    /// The training run itself failed (worker panic, divergence, checkpoint
    /// I/O); carries the rendered [`TrainError`] message.
    Training(String),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Storage(e) => write!(f, "storage error: {e}"),
            FrontendError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            FrontendError::Training(msg) => write!(f, "training failed: {msg}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<StorageError> for FrontendError {
    fn from(e: StorageError) -> Self {
        FrontendError::Storage(e)
    }
}

impl From<TrainError> for FrontendError {
    fn from(e: TrainError) -> Self {
        FrontendError::Training(e.to_string())
    }
}

/// Summary returned by the `*_train` front-ends.
#[derive(Debug, Clone)]
pub struct TrainSummary {
    /// Task that was trained (`"LR"`, `"SVM"`, `"LMF"`, ...).
    pub task: &'static str,
    /// Name of the table the model was persisted to.
    pub model_table: String,
    /// Model dimension.
    pub dimension: usize,
    /// Final objective value.
    pub final_loss: f64,
    /// Number of epochs run.
    pub epochs: usize,
    /// Whether the convergence criterion (not just the epoch cap) fired.
    pub converged: bool,
    /// Per-epoch history for diagnostics.
    pub history: TrainingHistory,
}

/// Infer the feature dimension of a feature-vector column by scanning the
/// tuple source (sparse rows report `max index + 1`). Works over row-store
/// and columnar tables alike.
pub fn infer_dimension<S: TupleScan + ?Sized>(source: &S, features_col: usize) -> usize {
    let mut dim = 0usize;
    source.scan_tuples(&mut |t| {
        if let Some(fv) = t.feature_view(features_col) {
            dim = dim.max(fv.dimension());
        }
    });
    dim
}

/// Persist a flat model as a `(idx INT, weight DOUBLE)` table named
/// `model_name`, replacing any existing table of that name.
pub fn persist_model(
    db: &mut Database,
    model_name: &str,
    model: &[f64],
) -> Result<(), FrontendError> {
    let schema = Schema::new(vec![
        Column::new("idx", DataType::Int),
        Column::new("weight", DataType::Double),
    ])?;
    let mut table = Table::new(model_name, schema);
    for (i, &w) in model.iter().enumerate() {
        table.insert(vec![Value::Int(i as i64), Value::Double(w)])?;
    }
    db.register_table(table)?;
    Ok(())
}

/// Load a model previously persisted with [`persist_model`].
pub fn load_model(db: &Database, model_name: &str) -> Result<Vec<f64>, FrontendError> {
    let table = db.table(model_name)?;
    let idx_col = table.column_index("idx")?;
    let weight_col = table.column_index("weight")?;
    let mut pairs: Vec<(usize, f64)> = Vec::with_capacity(table.len());
    for tuple in table.scan() {
        let idx = tuple
            .get_int(idx_col)
            .ok_or_else(|| FrontendError::InvalidInput("model idx is not an integer".into()))?;
        let weight = tuple
            .get_double(weight_col)
            .ok_or_else(|| FrontendError::InvalidInput("model weight is not a double".into()))?;
        pairs.push((idx as usize, weight));
    }
    let dim = pairs.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
    let mut model = vec![0.0; dim];
    for (i, w) in pairs {
        model[i] = w;
    }
    Ok(model)
}

/// Resolve feature/label columns and infer the model dimension for any
/// tuple source with an explicit schema.
fn resolve_training_source<S: TupleScan + ?Sized>(
    source: &S,
    schema: &Schema,
    source_name: &str,
    features_col: &str,
    label_col: &str,
) -> Result<(usize, usize, usize), FrontendError> {
    if source.tuple_count() == 0 {
        return Err(FrontendError::InvalidInput(format!(
            "training table '{source_name}' is empty"
        )));
    }
    let fcol = schema.index_of(features_col)?;
    let lcol = schema.index_of(label_col)?;
    let dim = infer_dimension(source, fcol);
    if dim == 0 {
        return Err(FrontendError::InvalidInput(format!(
            "column '{features_col}' holds no feature vectors"
        )));
    }
    Ok((fcol, lcol, dim))
}

fn resolve_training_table(
    db: &Database,
    table_name: &str,
    features_col: &str,
    label_col: &str,
) -> Result<(usize, usize, usize), FrontendError> {
    let table = db.table(table_name)?;
    resolve_training_source(table, table.schema(), table_name, features_col, label_col)
}

/// `SELECT LogisticRegressionTrain(model, table, features, label)` — train an
/// LR model and persist it as `model_name`.
pub fn logistic_regression_train(
    db: &mut Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
    label_col: &str,
    config: TrainerConfig,
) -> Result<TrainSummary, FrontendError> {
    let (fcol, lcol, dim) = resolve_training_table(db, table_name, features_col, label_col)?;
    let task = LogisticRegressionTask::new(fcol, lcol, dim);
    let trained = Trainer::new(&task, config).try_train(db.table(table_name)?)?;
    persist_model(db, model_name, &trained.model)?;
    Ok(TrainSummary {
        task: "LR",
        model_table: model_name.to_string(),
        dimension: dim,
        final_loss: trained.final_loss().unwrap_or(f64::NAN),
        epochs: trained.epochs(),
        converged: trained.history.converged(),
        history: trained.history,
    })
}

/// `SELECT SVMTrain(model, table, features, label)` — train a linear SVM and
/// persist it as `model_name`.
pub fn svm_train(
    db: &mut Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
    label_col: &str,
    config: TrainerConfig,
) -> Result<TrainSummary, FrontendError> {
    let (fcol, lcol, dim) = resolve_training_table(db, table_name, features_col, label_col)?;
    let task = SvmTask::new(fcol, lcol, dim);
    let trained = Trainer::new(&task, config).try_train(db.table(table_name)?)?;
    persist_model(db, model_name, &trained.model)?;
    Ok(TrainSummary {
        task: "SVM",
        model_table: model_name.to_string(),
        dimension: dim,
        final_loss: trained.final_loss().unwrap_or(f64::NAN),
        epochs: trained.epochs(),
        converged: trained.history.converged(),
        history: trained.history,
    })
}

/// Like [`logistic_regression_train`], but over an explicit tuple source
/// (e.g. a columnar table living outside the row-store catalog). The model
/// is still persisted into `db` under `model_name`.
#[allow(clippy::too_many_arguments)]
pub fn logistic_regression_train_source<S: TupleScan + ?Sized>(
    db: &mut Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    source_name: &str,
    features_col: &str,
    label_col: &str,
    config: TrainerConfig,
) -> Result<TrainSummary, FrontendError> {
    let (fcol, lcol, dim) =
        resolve_training_source(source, schema, source_name, features_col, label_col)?;
    let task = LogisticRegressionTask::new(fcol, lcol, dim);
    let trained = Trainer::new(&task, config).try_train(source)?;
    persist_model(db, model_name, &trained.model)?;
    Ok(TrainSummary {
        task: "LR",
        model_table: model_name.to_string(),
        dimension: dim,
        final_loss: trained.final_loss().unwrap_or(f64::NAN),
        epochs: trained.epochs(),
        converged: trained.history.converged(),
        history: trained.history,
    })
}

/// Like [`svm_train`], but over an explicit tuple source (e.g. a columnar
/// table living outside the row-store catalog). The model is still persisted
/// into `db` under `model_name`.
#[allow(clippy::too_many_arguments)]
pub fn svm_train_source<S: TupleScan + ?Sized>(
    db: &mut Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    source_name: &str,
    features_col: &str,
    label_col: &str,
    config: TrainerConfig,
) -> Result<TrainSummary, FrontendError> {
    let (fcol, lcol, dim) =
        resolve_training_source(source, schema, source_name, features_col, label_col)?;
    let task = SvmTask::new(fcol, lcol, dim);
    let trained = Trainer::new(&task, config).try_train(source)?;
    persist_model(db, model_name, &trained.model)?;
    Ok(TrainSummary {
        task: "SVM",
        model_table: model_name.to_string(),
        dimension: dim,
        final_loss: trained.final_loss().unwrap_or(f64::NAN),
        epochs: trained.epochs(),
        converged: trained.history.converged(),
        history: trained.history,
    })
}

/// `SELECT LMFTrain(model, table, row, col, rating, rows, cols, rank)` —
/// train a low-rank factorization and persist the stacked factors.
#[allow(clippy::too_many_arguments)]
pub fn lmf_train(
    db: &mut Database,
    model_name: &str,
    table_name: &str,
    row_col: &str,
    col_col: &str,
    rating_col: &str,
    rows: usize,
    cols: usize,
    rank: usize,
    config: TrainerConfig,
) -> Result<TrainSummary, FrontendError> {
    let table = db.table(table_name)?;
    if table.is_empty() {
        return Err(FrontendError::InvalidInput(format!(
            "training table '{table_name}' is empty"
        )));
    }
    let rcol = table.column_index(row_col)?;
    let ccol = table.column_index(col_col)?;
    let vcol = table.column_index(rating_col)?;
    let task = LmfTask::new(rcol, ccol, vcol, rows, cols, rank);
    let trained = Trainer::new(&task, config).try_train(table)?;
    persist_model(db, model_name, &trained.model)?;
    Ok(TrainSummary {
        task: "LMF",
        model_table: model_name.to_string(),
        dimension: task.dimension(),
        final_loss: trained.final_loss().unwrap_or(f64::NAN),
        epochs: trained.epochs(),
        converged: trained.history.converged(),
        history: trained.history,
    })
}

/// Evaluate the full objective value of a persisted linear-model task
/// (`Σ_i f_i(w) + P(w)`) over a data table — the "loss UDA" of Section 3.1
/// exposed as a front-end call. `task` selects the loss: LR uses the logistic
/// loss, SVM the hinge loss.
fn linear_objective_source<T: IgdTask, S: TupleScan + ?Sized>(
    db: &Database,
    task: &T,
    model_name: &str,
    source: &S,
) -> Result<f64, FrontendError> {
    let model = load_model(db, model_name)?;
    if model.len() != task.dimension() {
        return Err(FrontendError::InvalidInput(format!(
            "model '{model_name}' has dimension {}, expected {}",
            model.len(),
            task.dimension()
        )));
    }
    let mut total = task.regularizer(&model);
    source.scan_tuples(&mut |tuple| total += task.example_loss(&model, tuple));
    Ok(total)
}

fn linear_objective<T: IgdTask>(
    db: &Database,
    task: &T,
    model_name: &str,
    table_name: &str,
) -> Result<f64, FrontendError> {
    linear_objective_source(db, task, model_name, db.table(table_name)?)
}

/// Objective value of a persisted logistic-regression model over a table.
pub fn logistic_regression_loss(
    db: &Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
    label_col: &str,
) -> Result<f64, FrontendError> {
    let (fcol, lcol, dim) = resolve_training_table(db, table_name, features_col, label_col)?;
    let dim = dim.max(load_model(db, model_name)?.len());
    let task = LogisticRegressionTask::new(fcol, lcol, dim);
    linear_objective(db, &task, model_name, table_name)
}

/// Objective value of a persisted SVM model over a table.
pub fn svm_loss(
    db: &Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
    label_col: &str,
) -> Result<f64, FrontendError> {
    let (fcol, lcol, dim) = resolve_training_table(db, table_name, features_col, label_col)?;
    let dim = dim.max(load_model(db, model_name)?.len());
    let task = SvmTask::new(fcol, lcol, dim);
    linear_objective(db, &task, model_name, table_name)
}

/// Like [`logistic_regression_loss`], but over an explicit tuple source.
pub fn logistic_regression_loss_source<S: TupleScan + ?Sized>(
    db: &Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    source_name: &str,
    features_col: &str,
    label_col: &str,
) -> Result<f64, FrontendError> {
    let (fcol, lcol, dim) =
        resolve_training_source(source, schema, source_name, features_col, label_col)?;
    let dim = dim.max(load_model(db, model_name)?.len());
    let task = LogisticRegressionTask::new(fcol, lcol, dim);
    linear_objective_source(db, &task, model_name, source)
}

/// Like [`svm_loss`], but over an explicit tuple source.
pub fn svm_loss_source<S: TupleScan + ?Sized>(
    db: &Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    source_name: &str,
    features_col: &str,
    label_col: &str,
) -> Result<f64, FrontendError> {
    let (fcol, lcol, dim) =
        resolve_training_source(source, schema, source_name, features_col, label_col)?;
    let dim = dim.max(load_model(db, model_name)?.len());
    let task = SvmTask::new(fcol, lcol, dim);
    linear_objective_source(db, &task, model_name, source)
}

/// Infer the shape of a sequence-labeling column: `(num_features, num_labels)`
/// as `max feature index + 1` and `max label + 1` over every position of
/// every sequence.
pub fn infer_sequence_shape(table: &Table, sequence_col: usize) -> (usize, usize) {
    let mut num_features = 0usize;
    let mut num_labels = 0usize;
    for tuple in table.scan() {
        let Some(sequence) = tuple.get_sequence(sequence_col) else {
            continue;
        };
        for (features, label) in sequence {
            num_features = num_features.max(features.dimension());
            num_labels = num_labels.max(*label as usize + 1);
        }
    }
    (num_features, num_labels)
}

/// `SELECT CRFTrain(model, table, sequence)` — train a linear-chain CRF for
/// sequence labeling and persist the weights as `model_name`. The feature and
/// label alphabets are inferred from the data.
pub fn crf_train(
    db: &mut Database,
    model_name: &str,
    table_name: &str,
    sequence_col: &str,
    config: TrainerConfig,
) -> Result<TrainSummary, FrontendError> {
    let table = db.table(table_name)?;
    if table.is_empty() {
        return Err(FrontendError::InvalidInput(format!(
            "training table '{table_name}' is empty"
        )));
    }
    let scol = table.column_index(sequence_col)?;
    let (num_features, num_labels) = infer_sequence_shape(table, scol);
    if num_features == 0 || num_labels == 0 {
        return Err(FrontendError::InvalidInput(format!(
            "column '{sequence_col}' holds no labeled sequences"
        )));
    }
    let task = CrfTask::new(scol, num_features, num_labels);
    let trained = Trainer::new(&task, config).try_train(table)?;
    persist_model(db, model_name, &trained.model)?;
    Ok(TrainSummary {
        task: "CRF",
        model_table: model_name.to_string(),
        dimension: task.dimension(),
        final_loss: trained.final_loss().unwrap_or(f64::NAN),
        epochs: trained.epochs(),
        converged: trained.history.converged(),
        history: trained.history,
    })
}

/// Apply a persisted linear model to every row of a data table, returning the
/// raw decision values `wᵀx` in storage order.
pub fn linear_predict(
    db: &Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
) -> Result<Vec<f64>, FrontendError> {
    let table = db.table(table_name)?;
    linear_predict_source(db, model_name, table, table.schema(), features_col)
}

/// Like [`linear_predict`], but over an explicit tuple source.
pub fn linear_predict_source<S: TupleScan + ?Sized>(
    db: &Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    features_col: &str,
) -> Result<Vec<f64>, FrontendError> {
    let model = load_model(db, model_name)?;
    let fcol = schema.index_of(features_col)?;
    let mut out = Vec::with_capacity(source.tuple_count());
    source.scan_tuples(&mut |tuple| {
        out.push(
            tuple
                .feature_view(fcol)
                .map(|x| x.dot(&model))
                .unwrap_or(0.0),
        );
    });
    Ok(out)
}

/// Apply a persisted CRF model to every sequence of a data table, returning
/// the Viterbi label sequence for each row in storage order. Rows whose
/// sequence column is NULL produce an empty labeling.
pub fn crf_predict(
    db: &Database,
    model_name: &str,
    table_name: &str,
    sequence_col: &str,
) -> Result<Vec<Vec<usize>>, FrontendError> {
    let model = load_model(db, model_name)?;
    let table = db.table(table_name)?;
    let scol = table.column_index(sequence_col)?;
    let (num_features, num_labels) = infer_sequence_shape(table, scol);
    if num_features == 0 || num_labels == 0 {
        return Err(FrontendError::InvalidInput(format!(
            "column '{sequence_col}' holds no labeled sequences"
        )));
    }
    let task = CrfTask::new(scol, num_features, num_labels);
    if model.len() != task.dimension() {
        return Err(FrontendError::InvalidInput(format!(
            "model '{model_name}' has dimension {}, expected {} for this table",
            model.len(),
            task.dimension()
        )));
    }
    Ok(table
        .scan()
        .map(|tuple| match tuple.get_sequence(scol) {
            Some(sequence) => {
                let features: Vec<_> = sequence.iter().map(|(f, _)| f.clone()).collect();
                task.viterbi(&model, &features)
            }
            None => Vec::new(),
        })
        .collect())
}

/// Like [`logistic_predict`], but over an explicit tuple source.
pub fn logistic_predict_source<S: TupleScan + ?Sized>(
    db: &Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    features_col: &str,
) -> Result<Vec<f64>, FrontendError> {
    Ok(
        linear_predict_source(db, model_name, source, schema, features_col)?
            .into_iter()
            .map(bismarck_linalg::ops::sigmoid)
            .collect(),
    )
}

/// Like [`svm_predict`], but over an explicit tuple source.
pub fn svm_predict_source<S: TupleScan + ?Sized>(
    db: &Database,
    model_name: &str,
    source: &S,
    schema: &Schema,
    features_col: &str,
) -> Result<Vec<f64>, FrontendError> {
    Ok(
        linear_predict_source(db, model_name, source, schema, features_col)?
            .into_iter()
            .map(|v| {
                if v > 0.0 {
                    1.0
                } else if v < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            })
            .collect(),
    )
}

/// Apply a persisted LR model, returning positive-class probabilities.
pub fn logistic_predict(
    db: &Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
) -> Result<Vec<f64>, FrontendError> {
    Ok(linear_predict(db, model_name, table_name, features_col)?
        .into_iter()
        .map(bismarck_linalg::ops::sigmoid)
        .collect())
}

/// Apply a persisted SVM model, returning ±1 class predictions (0 for an
/// exactly-zero decision value).
pub fn svm_predict(
    db: &Database,
    model_name: &str,
    table_name: &str,
    features_col: &str,
) -> Result<Vec<f64>, FrontendError> {
    Ok(linear_predict(db, model_name, table_name, features_col)?
        .into_iter()
        .map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::classification_accuracy;
    use crate::stepsize::StepSizeSchedule;
    use bismarck_uda::ConvergenceTest;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn setup_db(n: usize) -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut table = Table::new("LabeledPapers", schema);
        let mut rng = StdRng::seed_from_u64(17);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = vec![
                y + rng.gen_range(-0.3..0.3),
                -y * 0.5 + rng.gen_range(-0.3..0.3),
            ];
            table
                .insert(vec![Value::Int(i as i64), Value::from(x), Value::Double(y)])
                .unwrap();
        }
        db.register_table(table).unwrap();
        db
    }

    fn fast_config() -> TrainerConfig {
        TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(10))
    }

    #[test]
    fn svm_train_and_predict_roundtrip() {
        let mut db = setup_db(200);
        let summary = svm_train(
            &mut db,
            "myModel",
            "LabeledPapers",
            "vec",
            "label",
            fast_config(),
        )
        .unwrap();
        assert_eq!(summary.task, "SVM");
        assert_eq!(summary.dimension, 2);
        assert_eq!(summary.epochs, 10);
        assert!(db.contains("myModel"));

        let preds = svm_predict(&db, "myModel", "LabeledPapers", "vec").unwrap();
        let labels: Vec<f64> = db
            .table("LabeledPapers")
            .unwrap()
            .scan()
            .map(|t| t.get_double(2).unwrap())
            .collect();
        assert!(classification_accuracy(&preds, &labels) > 0.9);
    }

    #[test]
    fn logistic_train_and_probabilities() {
        let mut db = setup_db(200);
        let summary = logistic_regression_train(
            &mut db,
            "lrModel",
            "LabeledPapers",
            "vec",
            "label",
            fast_config(),
        )
        .unwrap();
        assert_eq!(summary.task, "LR");
        assert!(summary.final_loss.is_finite());
        let probs = logistic_predict(&db, "lrModel", "LabeledPapers", "vec").unwrap();
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Positive examples (even ids) should receive higher probabilities.
        let mean_pos: f64 = probs.iter().step_by(2).sum::<f64>() / (probs.len() / 2) as f64;
        let mean_neg: f64 = probs.iter().skip(1).step_by(2).sum::<f64>() / (probs.len() / 2) as f64;
        assert!(mean_pos > mean_neg);
    }

    #[test]
    fn lmf_train_persists_factors() {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("row", DataType::Int),
            Column::new("col", DataType::Int),
            Column::new("rating", DataType::Double),
        ])
        .unwrap();
        let mut table = Table::new("Ratings", schema);
        for i in 0..5 {
            for j in 0..4 {
                table
                    .insert(vec![
                        Value::Int(i),
                        Value::Int(j),
                        Value::Double((i + 1) as f64 * 0.5 + (j + 1) as f64 * 0.25),
                    ])
                    .unwrap();
            }
        }
        db.register_table(table).unwrap();
        let summary = lmf_train(
            &mut db,
            "factors",
            "Ratings",
            "row",
            "col",
            "rating",
            5,
            4,
            2,
            fast_config().with_step_size(StepSizeSchedule::Constant(0.05)),
        )
        .unwrap();
        assert_eq!(summary.dimension, (5 + 4) * 2);
        let model = load_model(&db, "factors").unwrap();
        assert_eq!(model.len(), summary.dimension);
    }

    #[test]
    fn loss_frontends_match_a_direct_objective_computation() {
        let mut db = setup_db(150);
        svm_train(
            &mut db,
            "svmM",
            "LabeledPapers",
            "vec",
            "label",
            fast_config(),
        )
        .unwrap();
        logistic_regression_train(
            &mut db,
            "lrM",
            "LabeledPapers",
            "vec",
            "label",
            fast_config(),
        )
        .unwrap();

        let svm_value = svm_loss(&db, "svmM", "LabeledPapers", "vec", "label").unwrap();
        let lr_value =
            logistic_regression_loss(&db, "lrM", "LabeledPapers", "vec", "label").unwrap();
        assert!(svm_value.is_finite() && svm_value >= 0.0);
        assert!(lr_value.is_finite() && lr_value >= 0.0);

        // Cross-check against a hand-rolled sum of per-example losses.
        let model = load_model(&db, "svmM").unwrap();
        let task = SvmTask::new(1, 2, model.len());
        let expected: f64 = db
            .table("LabeledPapers")
            .unwrap()
            .scan()
            .map(|t| task.example_loss(&model, t))
            .sum::<f64>()
            + task.regularizer(&model);
        assert!((svm_value - expected).abs() < 1e-9);

        // A model whose dimension disagrees with the data is rejected.
        persist_model(&mut db, "tinyModel", &[0.5]).unwrap();
        assert!(svm_loss(&db, "tinyModel", "LabeledPapers", "vec", "label").is_err());
    }

    #[test]
    fn crf_train_and_viterbi_predict_roundtrip() {
        use bismarck_linalg::SparseVector;
        // Two-label chunking toy: feature 0 marks label 0, feature 1 marks
        // label 1; sequences alternate.
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("sentence", DataType::Sequence),
        ])
        .unwrap();
        let mut table = Table::new("Chunks", schema);
        for i in 0..40i64 {
            let seq: Vec<(SparseVector, u32)> = (0..6)
                .map(|p| {
                    let label = ((i as usize + p) % 2) as u32;
                    (SparseVector::from_pairs(vec![(label as usize, 1.0)]), label)
                })
                .collect();
            table
                .insert(vec![Value::Int(i), Value::Sequence(seq)])
                .unwrap();
        }
        db.register_table(table).unwrap();

        let summary = crf_train(
            &mut db,
            "crfModel",
            "Chunks",
            "sentence",
            fast_config().with_step_size(StepSizeSchedule::Constant(0.5)),
        )
        .unwrap();
        assert_eq!(summary.task, "CRF");
        assert!(summary.final_loss.is_finite());
        assert!(db.contains("crfModel"));

        let labelings = crf_predict(&db, "crfModel", "Chunks", "sentence").unwrap();
        assert_eq!(labelings.len(), 40);
        // The indicative features should make Viterbi recover the labels.
        let table = db.table("Chunks").unwrap();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (tuple, predicted) in table.scan().zip(&labelings) {
            let truth = tuple.get_sequence(1).unwrap();
            for ((_, gold), pred) in truth.iter().zip(predicted) {
                total += 1;
                if *gold as usize == *pred {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn infer_sequence_shape_reads_features_and_labels() {
        use bismarck_linalg::SparseVector;
        let schema = Schema::new(vec![Column::new("seq", DataType::Sequence)]).unwrap();
        let mut table = Table::new("S", schema);
        table
            .insert(vec![Value::Sequence(vec![
                (SparseVector::from_pairs(vec![(7, 1.0)]), 2),
                (SparseVector::from_pairs(vec![(3, 1.0)]), 0),
            ])])
            .unwrap();
        assert_eq!(infer_sequence_shape(&table, 0), (8, 3));
        // Empty table yields zero shape and trains are rejected.
        let empty = Table::new(
            "E",
            Schema::new(vec![Column::new("seq", DataType::Sequence)]).unwrap(),
        );
        assert_eq!(infer_sequence_shape(&empty, 0), (0, 0));
    }

    #[test]
    fn crf_predict_rejects_mismatched_model() {
        use bismarck_linalg::SparseVector;
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("seq", DataType::Sequence)]).unwrap();
        let mut table = Table::new("S", schema);
        table
            .insert(vec![Value::Sequence(vec![(
                SparseVector::from_pairs(vec![(0, 1.0)]),
                1,
            )])])
            .unwrap();
        db.register_table(table).unwrap();
        persist_model(&mut db, "tiny", &[0.1, 0.2, 0.3]).unwrap();
        let err = crf_predict(&db, "tiny", "S", "seq").unwrap_err();
        assert!(matches!(err, FrontendError::InvalidInput(_)));
    }

    #[test]
    fn persist_and_load_model_roundtrip() {
        let mut db = Database::new();
        let model = vec![0.5, -1.5, 0.0, 3.0];
        persist_model(&mut db, "m", &model).unwrap();
        assert_eq!(load_model(&db, "m").unwrap(), model);
    }

    #[test]
    fn errors_for_missing_tables_and_columns() {
        let mut db = setup_db(10);
        assert!(matches!(
            svm_train(&mut db, "m", "NoSuchTable", "vec", "label", fast_config()),
            Err(FrontendError::Storage(StorageError::UnknownTable(_)))
        ));
        assert!(matches!(
            svm_train(
                &mut db,
                "m",
                "LabeledPapers",
                "nope",
                "label",
                fast_config()
            ),
            Err(FrontendError::Storage(StorageError::UnknownColumn(_)))
        ));
        assert!(load_model(&db, "missingModel").is_err());
    }

    #[test]
    fn empty_training_table_is_rejected() {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        db.register_table(Table::new("Empty", schema)).unwrap();
        let err = svm_train(&mut db, "m", "Empty", "vec", "label", fast_config()).unwrap_err();
        assert!(matches!(err, FrontendError::InvalidInput(_)));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn infer_dimension_handles_sparse_and_empty() {
        let db = setup_db(10);
        let table = db.table("LabeledPapers").unwrap();
        assert_eq!(infer_dimension(table, 1), 2);
        // Non-vector column yields zero.
        assert_eq!(infer_dimension(table, 0), 0);
    }
}
