//! Step-size schedules (Appendix B).
//!
//! "In real-world systems, constant step-sizes and fixed number of epochs are
//! usually chosen by an optimization expert"; the convergence proofs use the
//! divergent-series (diminishing) rule `α_k → 0, Σ α_k = ∞` or the geometric
//! rule `α_k = α_0 ρ^k, 0 < ρ < 1`. We support all three, indexed either by
//! epoch (the common practice the paper describes) or by individual gradient
//! step (used by the CA-TX analysis in Figure 5).

/// A rule mapping an epoch (or step) counter to a step size `α ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSizeSchedule {
    /// A fixed step size for the whole run.
    Constant(f64),
    /// The divergent-series rule `α_k = α_0 / (1 + k)`.
    Diminishing {
        /// Step size at `k = 0`.
        initial: f64,
    },
    /// The geometric rule `α_k = α_0 · ρ^k` with `0 < ρ < 1`.
    Geometric {
        /// Step size at `k = 0`.
        initial: f64,
        /// Per-epoch decay factor.
        decay: f64,
    },
}

impl StepSizeSchedule {
    /// Step size for counter `k` (an epoch number or a step number,
    /// depending on how the caller indexes the schedule).
    pub fn at(&self, k: usize) -> f64 {
        match *self {
            StepSizeSchedule::Constant(alpha) => alpha,
            StepSizeSchedule::Diminishing { initial } => initial / (1.0 + k as f64),
            StepSizeSchedule::Geometric { initial, decay } => initial * decay.powi(k as i32),
        }
    }

    /// Validate the schedule's parameters (positive initial step, decay in
    /// `(0, 1)` for the geometric rule). Returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StepSizeSchedule::Constant(alpha) => {
                if alpha > 0.0 && alpha.is_finite() {
                    Ok(())
                } else {
                    Err(format!(
                        "constant step size must be positive and finite, got {alpha}"
                    ))
                }
            }
            StepSizeSchedule::Diminishing { initial } => {
                if initial > 0.0 && initial.is_finite() {
                    Ok(())
                } else {
                    Err(format!(
                        "diminishing step size must start positive, got {initial}"
                    ))
                }
            }
            StepSizeSchedule::Geometric { initial, decay } => {
                if !(initial > 0.0 && initial.is_finite()) {
                    Err(format!(
                        "geometric step size must start positive, got {initial}"
                    ))
                } else if !(0.0 < decay && decay < 1.0) {
                    Err(format!("geometric decay must lie in (0, 1), got {decay}"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            StepSizeSchedule::Constant(_) => "constant",
            StepSizeSchedule::Diminishing { .. } => "diminishing",
            StepSizeSchedule::Geometric { .. } => "geometric",
        }
    }
}

impl Default for StepSizeSchedule {
    /// A conservative constant step size; tasks typically override this.
    fn default() -> Self {
        StepSizeSchedule::Constant(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = StepSizeSchedule::Constant(0.5);
        assert_eq!(s.at(0), 0.5);
        assert_eq!(s.at(1000), 0.5);
        assert_eq!(s.label(), "constant");
    }

    #[test]
    fn diminishing_decays_harmonically() {
        let s = StepSizeSchedule::Diminishing { initial: 1.0 };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(1) - 0.5).abs() < 1e-12);
        assert!((s.at(9) - 0.1).abs() < 1e-12);
        // divergent series: partial sums grow without bound
        let sum: f64 = (0..10_000).map(|k| s.at(k)).sum();
        assert!(sum > 9.0);
    }

    #[test]
    fn geometric_decays_exponentially() {
        let s = StepSizeSchedule::Geometric {
            initial: 1.0,
            decay: 0.5,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(3), 0.125);
        assert_eq!(s.label(), "geometric");
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(StepSizeSchedule::Constant(0.1).validate().is_ok());
        assert!(StepSizeSchedule::Constant(0.0).validate().is_err());
        assert!(StepSizeSchedule::Constant(f64::NAN).validate().is_err());
        assert!(StepSizeSchedule::Diminishing { initial: -1.0 }
            .validate()
            .is_err());
        assert!(StepSizeSchedule::Geometric {
            initial: 1.0,
            decay: 1.5
        }
        .validate()
        .is_err());
        assert!(StepSizeSchedule::Geometric {
            initial: 1.0,
            decay: 0.9
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn default_is_valid() {
        assert!(StepSizeSchedule::default().validate().is_ok());
    }
}
