//! Evaluation metrics used by the examples and experiments.

/// Fraction of predictions whose sign matches the ±1 label.
///
/// Zero predictions count as wrong (the model abstained), matching how the
/// paper's quality checks treat undecided examples conservatively.
pub fn classification_accuracy(predictions: &[f64], labels: &[f64]) -> f64 {
    if predictions.is_empty() || predictions.len() != labels.len() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p.signum() == y.signum() && **p != 0.0)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Root-mean-squared error between predictions and targets.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    if predictions.is_empty() || predictions.len() != targets.len() {
        return f64::NAN;
    }
    let mse: f64 = predictions
        .iter()
        .zip(targets.iter())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Token-level accuracy for sequence labeling: the fraction of positions
/// whose predicted label equals the gold label, over all sequences.
pub fn sequence_accuracy(predicted: &[Vec<usize>], gold: &[Vec<usize>]) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for (p, g) in predicted.iter().zip(gold.iter()) {
        for (a, b) in p.iter().zip(g.iter()) {
            total += 1;
            if a == b {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// "Fraction of optimal log-likelihood" used by Figure 7(B): how much of the
/// gap between a reference (untrained) loss and the best-known loss has been
/// closed, as a percentage in `[0, 100]`.
pub fn fraction_of_optimal(current: f64, initial: f64, best: f64) -> f64 {
    if !current.is_finite() || !initial.is_finite() || !best.is_finite() {
        return 0.0;
    }
    let denom = initial - best;
    if denom.abs() < 1e-12 {
        return 100.0;
    }
    (((initial - current) / denom) * 100.0).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matching_signs() {
        let preds = [1.5, -0.2, 0.4, -2.0];
        let labels = [1.0, 1.0, 1.0, -1.0];
        assert!((classification_accuracy(&preds, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_edge_cases() {
        assert_eq!(classification_accuracy(&[], &[]), 0.0);
        assert_eq!(classification_accuracy(&[1.0], &[]), 0.0);
        // zero prediction counts as wrong
        assert_eq!(classification_accuracy(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!(rmse(&[], &[]).is_nan());
        assert_eq!(rmse(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn sequence_accuracy_counts_positions() {
        let pred = vec![vec![0, 1, 1], vec![1, 0]];
        let gold = vec![vec![0, 1, 0], vec![1, 1]];
        assert!((sequence_accuracy(&pred, &gold) - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(sequence_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn fraction_of_optimal_interpolates() {
        assert!((fraction_of_optimal(10.0, 10.0, 0.0) - 0.0).abs() < 1e-12);
        assert!((fraction_of_optimal(0.0, 10.0, 0.0) - 100.0).abs() < 1e-12);
        assert!((fraction_of_optimal(5.0, 10.0, 0.0) - 50.0).abs() < 1e-12);
        // Overshooting the best value is clamped.
        assert_eq!(fraction_of_optimal(-5.0, 10.0, 0.0), 100.0);
        // Degenerate gap.
        assert_eq!(fraction_of_optimal(3.0, 1.0, 1.0), 100.0);
        assert_eq!(fraction_of_optimal(f64::NAN, 1.0, 0.0), 0.0);
    }
}
