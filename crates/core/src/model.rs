//! Model storage abstractions.
//!
//! Every Bismarck task represents its model as a flat vector of `f64`
//! components (a coefficient vector for LR/SVM/CRF, the stacked `L` and `R`
//! factors for matrix factorization, stacked per-timestep states for Kalman
//! smoothing). Tasks perform their gradient step through the [`ModelStore`]
//! trait, so the *same* transition code runs against:
//!
//! * a private dense vector (sequential execution and the pure-UDA segments),
//! * a [`bismarck_storage::SharedModel`] updated without any locking at all
//!   (the Hogwild!-style **NoLock** scheme), or
//! * a shared model updated with per-component compare-and-swap (**AIG**).
//!
//! The whole-model **Lock** discipline does not need its own store: the
//! parallel executor serializes workers around a mutex and hands each of them
//! the plain dense store while the lock is held.

use bismarck_storage::SharedModel;

/// Read/update access to a flat model, abstracting over private and shared
/// storage so task transition functions are written once.
pub trait ModelStore {
    /// Number of model components.
    fn len(&self) -> usize;

    /// Whether the model has no components.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read component `i`.
    fn read(&self, i: usize) -> f64;

    /// Add `delta` to component `i`.
    fn update(&mut self, i: usize, delta: f64);

    /// Overwrite component `i` with `value`.
    fn write(&mut self, i: usize, value: f64);

    /// Copy the model into a dense vector (used for loss evaluation and for
    /// applying dense proximal operators).
    fn snapshot(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }
}

/// A private dense model: the ordinary sequential case.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseModelStore {
    values: Vec<f64>,
}

impl DenseModelStore {
    /// Wrap an existing dense model.
    pub fn new(values: Vec<f64>) -> Self {
        DenseModelStore { values }
    }

    /// A zero model of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseModelStore {
            values: vec![0.0; n],
        }
    }

    /// Borrow the underlying components.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutably borrow the underlying components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }
}

impl ModelStore for DenseModelStore {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.values[i]
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.values[i] += delta;
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.values[i] = value;
    }

    fn snapshot(&self) -> Vec<f64> {
        self.values.clone()
    }
}

/// Mutable-slice model store used when a caller already holds exclusive
/// access to a dense model (e.g. inside the Lock discipline's critical
/// section).
#[derive(Debug)]
pub struct SliceModelStore<'a> {
    values: &'a mut [f64],
}

impl<'a> SliceModelStore<'a> {
    /// Wrap a mutable slice.
    pub fn new(values: &'a mut [f64]) -> Self {
        SliceModelStore { values }
    }
}

impl ModelStore for SliceModelStore<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.values[i]
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.values[i] += delta;
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.values[i] = value;
    }

    fn snapshot(&self) -> Vec<f64> {
        self.values.to_vec()
    }
}

/// Shared-memory store with no locking at all: racy read-modify-write, the
/// NoLock (Hogwild!) discipline of Section 3.3.
#[derive(Debug, Clone)]
pub struct NoLockStore {
    shared: SharedModel,
}

impl NoLockStore {
    /// Wrap a shared model.
    pub fn new(shared: SharedModel) -> Self {
        NoLockStore { shared }
    }

    /// The underlying shared model.
    pub fn shared(&self) -> &SharedModel {
        &self.shared
    }
}

impl ModelStore for NoLockStore {
    fn len(&self) -> usize {
        self.shared.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.shared.load(i)
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.shared.add_racy(i, delta);
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.shared.store(i, value);
    }

    fn snapshot(&self) -> Vec<f64> {
        self.shared.snapshot()
    }
}

/// Shared-memory store with per-component atomic updates: the Atomic
/// Incremental Gradient (AIG) discipline, which "uses only
/// CompareAndExchange instructions to effectively perform per-component
/// locking".
#[derive(Debug, Clone)]
pub struct AigStore {
    shared: SharedModel,
}

impl AigStore {
    /// Wrap a shared model.
    pub fn new(shared: SharedModel) -> Self {
        AigStore { shared }
    }

    /// The underlying shared model.
    pub fn shared(&self) -> &SharedModel {
        &self.shared
    }
}

impl ModelStore for AigStore {
    fn len(&self) -> usize {
        self.shared.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.shared.load(i)
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.shared.add_atomic(i, delta);
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.shared.store(i, value);
    }

    fn snapshot(&self) -> Vec<f64> {
        self.shared.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: ModelStore>(store: &mut M) {
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        store.write(0, 1.0);
        store.update(0, 0.5);
        store.update(2, -1.0);
        assert_eq!(store.read(0), 1.5);
        assert_eq!(store.read(1), 0.0);
        assert_eq!(store.snapshot(), vec![1.5, 0.0, -1.0]);
    }

    #[test]
    fn dense_store_contract() {
        let mut store = DenseModelStore::zeros(3);
        exercise(&mut store);
        assert_eq!(store.into_vec(), vec![1.5, 0.0, -1.0]);
    }

    #[test]
    fn slice_store_contract() {
        let mut backing = vec![0.0; 3];
        {
            let mut store = SliceModelStore::new(&mut backing);
            exercise(&mut store);
        }
        assert_eq!(backing, vec![1.5, 0.0, -1.0]);
    }

    #[test]
    fn nolock_store_contract_and_shares_memory() {
        let shared = SharedModel::zeros(3);
        let mut store = NoLockStore::new(shared.clone());
        exercise(&mut store);
        assert_eq!(shared.snapshot(), vec![1.5, 0.0, -1.0]);
        assert_eq!(store.shared().len(), 3);
    }

    #[test]
    fn aig_store_contract_and_shares_memory() {
        let shared = SharedModel::zeros(3);
        let mut store = AigStore::new(shared.clone());
        exercise(&mut store);
        assert_eq!(shared.snapshot(), vec![1.5, 0.0, -1.0]);
        assert_eq!(store.shared().len(), 3);
    }

    #[test]
    fn dense_store_from_existing_model() {
        let store = DenseModelStore::new(vec![1.0, 2.0]);
        assert_eq!(store.as_slice(), &[1.0, 2.0]);
        assert_eq!(store.snapshot(), vec![1.0, 2.0]);
    }
}
