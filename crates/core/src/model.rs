//! Model storage abstractions.
//!
//! Every Bismarck task represents its model as a flat vector of `f64`
//! components (a coefficient vector for LR/SVM/CRF, the stacked `L` and `R`
//! factors for matrix factorization, stacked per-timestep states for Kalman
//! smoothing). Tasks perform their gradient step through the [`ModelStore`]
//! trait, so the *same* transition code runs against:
//!
//! * a private dense vector (sequential execution and the pure-UDA segments),
//! * a [`bismarck_storage::SharedModel`] updated without any locking at all
//!   (the Hogwild!-style **NoLock** scheme), or
//! * a shared model updated with per-component compare-and-swap (**AIG**).
//!
//! The whole-model **Lock** discipline does not need its own store: the
//! parallel executor serializes workers around a mutex and hands each of them
//! the plain dense store while the lock is held.

use bismarck_linalg::FeatureVectorRef;
use bismarck_storage::SharedModel;

/// Read/update access to a flat model, abstracting over private and shared
/// storage so task transition functions are written once.
///
/// Beyond the per-coordinate primitives, the trait carries the **bulk
/// kernels** the paper's Figure 4 transitions are made of: `dot_view`
/// (`Dot_Product`) and `axpy_view` (`Scale_And_Add`) over a borrowed feature
/// view. Private dense stores override them with single vectorizable slice
/// loops; the shared NoLock/AIG stores keep the per-coordinate defaults,
/// which preserve their racy / compare-and-swap update semantics.
///
/// A full gradient step is two kernel calls:
///
/// ```
/// use bismarck_core::model::{DenseModelStore, ModelStore};
/// use bismarck_linalg::FeatureVectorRef;
///
/// let mut w = DenseModelStore::new(vec![1.0, 0.0, -1.0]);
/// let x = FeatureVectorRef::Dense(&[2.0, 0.0, 1.0]);
///
/// let score = w.dot_view(x); // Dot_Product
/// assert_eq!(score, 1.0);
/// w.axpy_view(x, 0.5); // Scale_And_Add: w += 0.5 * x
/// assert_eq!(w.snapshot(), vec![2.0, 0.0, -0.5]);
/// ```
pub trait ModelStore {
    /// Number of model components.
    fn len(&self) -> usize;

    /// Whether the model has no components.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read component `i`.
    fn read(&self, i: usize) -> f64;

    /// Add `delta` to component `i`.
    fn update(&mut self, i: usize, delta: f64);

    /// Overwrite component `i` with `value`.
    fn write(&mut self, i: usize, value: f64);

    /// `Dot_Product(w, x)` against a borrowed feature view. Entries at or
    /// beyond [`ModelStore::len`] contribute zero, matching the bounds
    /// convention of the per-coordinate path.
    #[inline]
    fn dot_view(&self, x: FeatureVectorRef<'_>) -> f64 {
        let n = self.len();
        let mut acc = 0.0;
        for (i, v) in x.iter_entries() {
            if i < n {
                acc += self.read(i) * v;
            }
        }
        acc
    }

    /// `Scale_And_Add(w, x, c)`: `w += c * x` through the store's update
    /// discipline. Entries at or beyond [`ModelStore::len`] are ignored.
    #[inline]
    fn axpy_view(&mut self, x: FeatureVectorRef<'_>, c: f64) {
        let n = self.len();
        for (i, v) in x.iter_entries() {
            if i < n {
                self.update(i, c * v);
            }
        }
    }

    /// Copy the model into a dense vector (used for loss evaluation and for
    /// applying dense proximal operators).
    fn snapshot(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Copy the model into a caller-owned buffer, reusing its allocation.
    /// Callers that snapshot repeatedly (e.g. the CRF's per-sentence
    /// forward–backward) keep one scratch vector instead of allocating per
    /// tuple.
    fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.len()).map(|i| self.read(i)));
    }
}

/// A private dense model: the ordinary sequential case.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseModelStore {
    values: Vec<f64>,
}

impl DenseModelStore {
    /// Wrap an existing dense model.
    pub fn new(values: Vec<f64>) -> Self {
        DenseModelStore { values }
    }

    /// A zero model of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseModelStore {
            values: vec![0.0; n],
        }
    }

    /// Borrow the underlying components.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutably borrow the underlying components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }
}

impl ModelStore for DenseModelStore {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.values[i]
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.values[i] += delta;
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.values[i] = value;
    }

    // Slice fast paths: one vectorizable loop instead of `d` virtual calls.
    #[inline]
    fn dot_view(&self, x: FeatureVectorRef<'_>) -> f64 {
        x.dot(&self.values)
    }

    #[inline]
    fn axpy_view(&mut self, x: FeatureVectorRef<'_>, c: f64) {
        x.scale_and_add_into(&mut self.values, c);
    }

    fn snapshot(&self) -> Vec<f64> {
        self.values.clone()
    }

    fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.values);
    }
}

/// Mutable-slice model store used when a caller already holds exclusive
/// access to a dense model (e.g. inside the Lock discipline's critical
/// section).
#[derive(Debug)]
pub struct SliceModelStore<'a> {
    values: &'a mut [f64],
}

impl<'a> SliceModelStore<'a> {
    /// Wrap a mutable slice.
    pub fn new(values: &'a mut [f64]) -> Self {
        SliceModelStore { values }
    }
}

impl ModelStore for SliceModelStore<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.values[i]
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.values[i] += delta;
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.values[i] = value;
    }

    // The Lock discipline holds exclusive access inside its critical
    // section, so it gets the same slice kernels as the private store.
    #[inline]
    fn dot_view(&self, x: FeatureVectorRef<'_>) -> f64 {
        x.dot(self.values)
    }

    #[inline]
    fn axpy_view(&mut self, x: FeatureVectorRef<'_>, c: f64) {
        x.scale_and_add_into(self.values, c);
    }

    fn snapshot(&self) -> Vec<f64> {
        self.values.to_vec()
    }

    fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.values);
    }
}

/// Shared-memory store with no locking at all: racy read-modify-write, the
/// NoLock (Hogwild!) discipline of Section 3.3.
#[derive(Debug, Clone)]
pub struct NoLockStore {
    shared: SharedModel,
}

impl NoLockStore {
    /// Wrap a shared model.
    pub fn new(shared: SharedModel) -> Self {
        NoLockStore { shared }
    }

    /// The underlying shared model.
    pub fn shared(&self) -> &SharedModel {
        &self.shared
    }
}

// NoLock keeps the default per-coordinate `dot_view`/`axpy_view`: each
// component update must go through `add_racy` individually — that *is* the
// Hogwild! discipline.
impl ModelStore for NoLockStore {
    fn len(&self) -> usize {
        self.shared.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.shared.load(i)
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.shared.add_racy(i, delta);
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.shared.store(i, value);
    }

    fn snapshot(&self) -> Vec<f64> {
        self.shared.snapshot()
    }
}

/// Shared-memory store with per-component atomic updates: the Atomic
/// Incremental Gradient (AIG) discipline, which "uses only
/// CompareAndExchange instructions to effectively perform per-component
/// locking".
#[derive(Debug, Clone)]
pub struct AigStore {
    shared: SharedModel,
}

impl AigStore {
    /// Wrap a shared model.
    pub fn new(shared: SharedModel) -> Self {
        AigStore { shared }
    }

    /// The underlying shared model.
    pub fn shared(&self) -> &SharedModel {
        &self.shared
    }
}

// AIG keeps the default per-coordinate `dot_view`/`axpy_view`: per-component
// compare-and-swap is the whole point of the discipline, so the bulk kernels
// must not be collapsed into an unsynchronized slice loop.
impl ModelStore for AigStore {
    fn len(&self) -> usize {
        self.shared.len()
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        self.shared.load(i)
    }

    #[inline]
    fn update(&mut self, i: usize, delta: f64) {
        self.shared.add_atomic(i, delta);
    }

    #[inline]
    fn write(&mut self, i: usize, value: f64) {
        self.shared.store(i, value);
    }

    fn snapshot(&self) -> Vec<f64> {
        self.shared.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use bismarck_linalg::SparseVector;

    fn exercise<M: ModelStore>(store: &mut M) {
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        store.write(0, 1.0);
        store.update(0, 0.5);
        store.update(2, -1.0);
        assert_eq!(store.read(0), 1.5);
        assert_eq!(store.read(1), 0.0);
        assert_eq!(store.snapshot(), vec![1.5, 0.0, -1.0]);

        // Bulk kernels agree with the per-coordinate primitives, including
        // ragged inputs whose entries run past the model length.
        let dense = [2.0, 1.0, 0.0, 9.0];
        assert_eq!(store.dot_view(FeatureVectorRef::Dense(&dense)), 1.5 * 2.0);
        let sparse = SparseVector::from_pairs(vec![(2, 4.0), (7, 1.0)]);
        assert_eq!(store.dot_view(FeatureVectorRef::from(&sparse)), -4.0);
        store.axpy_view(FeatureVectorRef::from(&sparse), 0.5);
        assert_eq!(store.read(2), 1.0);
        store.axpy_view(FeatureVectorRef::Dense(&dense), 1.0);
        assert_eq!(store.snapshot(), vec![3.5, 1.0, 1.0]);

        let mut scratch = vec![7.0; 10];
        store.snapshot_into(&mut scratch);
        assert_eq!(scratch, vec![3.5, 1.0, 1.0]);

        // Reset to the state the per-store assertions expect.
        store.write(0, 1.5);
        store.write(1, 0.0);
        store.write(2, -1.0);
    }

    #[test]
    fn dense_store_contract() {
        let mut store = DenseModelStore::zeros(3);
        exercise(&mut store);
        assert_eq!(store.into_vec(), vec![1.5, 0.0, -1.0]);
    }

    #[test]
    fn slice_store_contract() {
        let mut backing = vec![0.0; 3];
        {
            let mut store = SliceModelStore::new(&mut backing);
            exercise(&mut store);
        }
        assert_eq!(backing, vec![1.5, 0.0, -1.0]);
    }

    #[test]
    fn nolock_store_contract_and_shares_memory() {
        let shared = SharedModel::zeros(3);
        let mut store = NoLockStore::new(shared.clone());
        exercise(&mut store);
        assert_eq!(shared.snapshot(), vec![1.5, 0.0, -1.0]);
        assert_eq!(store.shared().len(), 3);
    }

    #[test]
    fn aig_store_contract_and_shares_memory() {
        let shared = SharedModel::zeros(3);
        let mut store = AigStore::new(shared.clone());
        exercise(&mut store);
        assert_eq!(shared.snapshot(), vec![1.5, 0.0, -1.0]);
        assert_eq!(store.shared().len(), 3);
    }

    #[test]
    fn dense_store_from_existing_model() {
        let store = DenseModelStore::new(vec![1.0, 2.0]);
        assert_eq!(store.as_slice(), &[1.0, 2.0]);
        assert_eq!(store.snapshot(), vec![1.0, 2.0]);
    }
}
