//! Hold-out and cross-validated evaluation of trained models.
//!
//! The paper "verified that all the tools compared achieved similar training
//! quality on a given task and dataset"; this module provides the machinery
//! for such quality checks — deterministic train/test splits of a stored
//! table and k-fold cross validation driven entirely through the public
//! training API.

use bismarck_storage::{ScanOrder, Table};

use crate::metrics::classification_accuracy;
use crate::task::IgdTask;
use crate::trainer::{Trainer, TrainerConfig};

/// A deterministic split of a table's rows into train and test partitions.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Row ids of the training partition.
    pub train_rows: Vec<usize>,
    /// Row ids of the held-out partition.
    pub test_rows: Vec<usize>,
}

/// Split the rows of `table` into train/test partitions with the given
/// held-out fraction, after a seeded shuffle so clustered storage order does
/// not leak into the split.
pub fn train_test_split(table: &Table, test_fraction: f64, seed: u64) -> TrainTestSplit {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let order = ScanOrder::ShuffleOnce { seed }
        .permutation(table.len(), 0)
        .unwrap_or_default();
    let test_len = (table.len() as f64 * test_fraction).round() as usize;
    let (test_rows, train_rows) = order.split_at(test_len.min(order.len()));
    TrainTestSplit {
        train_rows: train_rows.to_vec(),
        test_rows: test_rows.to_vec(),
    }
}

/// Materialize a subset of a table's rows into a new table with the same
/// schema (used to build the per-fold training tables).
pub fn materialize_rows(table: &Table, rows: &[usize], name: &str) -> Table {
    let mut out = Table::new(name, table.schema().clone());
    for &row in rows {
        if let Ok(tuple) = table.get(row) {
            out.insert(tuple.clone().into_values())
                .expect("same schema accepts its own rows");
        }
    }
    out
}

/// Result of a hold-out evaluation of a binary classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldoutReport {
    /// Accuracy on the training partition.
    pub train_accuracy: f64,
    /// Accuracy on the held-out partition.
    pub test_accuracy: f64,
    /// Objective value on the training partition.
    pub train_loss: f64,
}

/// Train a binary classification task on a train/test split and report
/// accuracy on both partitions. The decision value is `wᵀx`; its sign is the
/// predicted class.
pub fn holdout_evaluate<T: IgdTask>(
    task: &T,
    table: &Table,
    features_col: usize,
    label_col: usize,
    config: TrainerConfig,
    test_fraction: f64,
    seed: u64,
) -> HoldoutReport {
    let split = train_test_split(table, test_fraction, seed);
    let train_table = materialize_rows(table, &split.train_rows, "holdout_train");
    let trained = Trainer::new(task, config).train(&train_table);

    let accuracy_on = |rows: &[usize]| {
        let mut predictions = Vec::with_capacity(rows.len());
        let mut labels = Vec::with_capacity(rows.len());
        for &row in rows {
            let Ok(tuple) = table.get(row) else { continue };
            let (Some(x), Some(y)) = (
                tuple.feature_view(features_col),
                tuple.get_double(label_col),
            ) else {
                continue;
            };
            predictions.push(x.dot(&trained.model));
            labels.push(y);
        }
        classification_accuracy(&predictions, &labels)
    };

    HoldoutReport {
        train_accuracy: accuracy_on(&split.train_rows),
        test_accuracy: accuracy_on(&split.test_rows),
        train_loss: trained.final_loss().unwrap_or(f64::NAN),
    }
}

/// Result of a k-fold cross validation.
#[derive(Debug, Clone)]
pub struct CrossValidationReport {
    /// Held-out accuracy of each fold.
    pub fold_accuracies: Vec<f64>,
}

impl CrossValidationReport {
    /// Mean held-out accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }
}

/// k-fold cross validation of a binary classification task.
pub fn cross_validate<T: IgdTask>(
    task: &T,
    table: &Table,
    features_col: usize,
    label_col: usize,
    config: TrainerConfig,
    folds: usize,
    seed: u64,
) -> CrossValidationReport {
    assert!(folds >= 2, "need at least two folds");
    let order = ScanOrder::ShuffleOnce { seed }
        .permutation(table.len(), 0)
        .unwrap_or_default();
    let fold_size = table.len().div_ceil(folds);
    let mut fold_accuracies = Vec::with_capacity(folds);

    for fold in 0..folds {
        let start = fold * fold_size;
        let end = ((fold + 1) * fold_size).min(order.len());
        if start >= end {
            continue;
        }
        let test_rows: Vec<usize> = order[start..end].to_vec();
        let train_rows: Vec<usize> = order[..start]
            .iter()
            .chain(order[end..].iter())
            .copied()
            .collect();
        let train_table = materialize_rows(table, &train_rows, "cv_train");
        let trained = Trainer::new(task, config.clone()).train(&train_table);

        let mut predictions = Vec::new();
        let mut labels = Vec::new();
        for &row in &test_rows {
            let Ok(tuple) = table.get(row) else { continue };
            let (Some(x), Some(y)) = (
                tuple.feature_view(features_col),
                tuple.get_double(label_col),
            ) else {
                continue;
            };
            predictions.push(x.dot(&trained.model));
            labels.push(y);
        }
        fold_accuracies.push(classification_accuracy(&predictions, &labels));
    }

    CrossValidationReport { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepsize::StepSizeSchedule;
    use crate::tasks::SvmTask;
    use bismarck_storage::{Column, DataType, Schema, Value};
    use bismarck_uda::ConvergenceTest;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("data", schema);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.5 + rng.gen_range(-0.5..0.5),
                -y + rng.gen_range(-0.5..0.5),
            ];
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    fn config() -> TrainerConfig {
        TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.3))
            .with_convergence(ConvergenceTest::FixedEpochs(8))
    }

    #[test]
    fn split_partitions_all_rows_without_overlap() {
        let t = table(100);
        let split = train_test_split(&t, 0.25, 7);
        assert_eq!(split.test_rows.len(), 25);
        assert_eq!(split.train_rows.len(), 75);
        let mut all: Vec<usize> = split
            .train_rows
            .iter()
            .chain(split.test_rows.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let t = table(60);
        let a = train_test_split(&t, 0.3, 1);
        let b = train_test_split(&t, 0.3, 1);
        let c = train_test_split(&t, 0.3, 2);
        assert_eq!(a.test_rows, b.test_rows);
        assert_ne!(a.test_rows, c.test_rows);
    }

    #[test]
    fn materialize_rows_preserves_tuples() {
        let t = table(20);
        let sub = materialize_rows(&t, &[3, 5, 7], "sub");
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(0).unwrap(), t.get(3).unwrap());
        // Out-of-range rows are skipped.
        let sub2 = materialize_rows(&t, &[0, 999], "sub2");
        assert_eq!(sub2.len(), 1);
    }

    #[test]
    fn holdout_evaluation_generalizes_on_separable_data() {
        let t = table(600);
        let task = SvmTask::new(0, 1, 2);
        let report = holdout_evaluate(&task, &t, 0, 1, config(), 0.25, 13);
        assert!(report.train_accuracy > 0.9, "train {:?}", report);
        assert!(report.test_accuracy > 0.85, "test {:?}", report);
        assert!(report.train_loss.is_finite());
    }

    #[test]
    fn cross_validation_averages_folds() {
        let t = table(300);
        let task = SvmTask::new(0, 1, 2);
        let report = cross_validate(&task, &t, 0, 1, config(), 5, 3);
        assert_eq!(report.fold_accuracies.len(), 5);
        assert!(report.mean_accuracy() > 0.85, "{:?}", report);
        assert!(report
            .fold_accuracies
            .iter()
            .all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn cross_validation_rejects_single_fold() {
        let t = table(20);
        let task = SvmTask::new(0, 1, 2);
        cross_validate(&task, &t, 0, 1, config(), 1, 3);
    }

    #[test]
    fn empty_report_mean_is_zero() {
        let report = CrossValidationReport {
            fold_accuracies: vec![],
        };
        assert_eq!(report.mean_accuracy(), 0.0);
    }
}
