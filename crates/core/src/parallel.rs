//! Parallelizing the IGD aggregate (Section 3.3).
//!
//! Two families of schemes, both built from standard engine facilities:
//!
//! * **Pure UDA** — shared-nothing parallelism through the aggregate's
//!   `merge` function: each segment trains its own model copy over its slice
//!   of the data and the partial models are averaged (Zinkevich et al.).
//!   Near-linear speed-up of the gradient pass, but the model averaging
//!   costs convergence quality (Figure 9(A)).
//! * **Shared-memory UDA** — the model lives in user-managed shared memory
//!   and all workers update it concurrently, with one of three disciplines:
//!   whole-model **Lock**, per-component **AIG** (compare-and-swap), or
//!   **NoLock** (Hogwild!). The paper adopts NoLock for Bismarck because it
//!   converges like Lock but scales like the lock-free scheme.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

use bismarck_storage::{segment_ranges, ScanOrder, SharedModel, Tuple, TupleScan};
use bismarck_uda::{panic_message, try_run_segmented_parallel, EpochOutcome, EpochRunner};
use parking_lot::Mutex;

use crate::checkpoint::TrainingCheckpoint;
use crate::error::TrainError;
use crate::igd::IgdAggregate;
use crate::model::{AigStore, NoLockStore, SliceModelStore};
use crate::task::{IgdTask, ProximalPolicy};
use crate::trainer::{
    maybe_write_checkpoint, prior_records, publish_serving, stop_requested, unwrap_trained,
    validate_checkpoint, validate_serving, write_interrupt_checkpoint, EpochAbort, ResumeState,
    TrainedModel, TrainerConfig,
};

/// How shared-memory workers update the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDiscipline {
    /// Serialize every gradient step behind a whole-model mutex.
    Lock,
    /// Per-component atomic adds (compare-and-swap loops).
    Aig,
    /// No synchronization at all (Hogwild!).
    NoLock,
}

impl UpdateDiscipline {
    /// Human-readable name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateDiscipline::Lock => "Lock",
            UpdateDiscipline::Aig => "AIG",
            UpdateDiscipline::NoLock => "NoLock",
        }
    }
}

/// Which parallelization scheme to run.
///
/// The two families of Section 3.3: shared-nothing model averaging
/// ([`PureUda`](Self::PureUda), portable to any engine with UDA `merge`) and
/// shared-memory concurrent updates ([`SharedMemory`](Self::SharedMemory),
/// whose [`UpdateDiscipline`] trades contention against staleness).
///
/// ```
/// use bismarck_core::{ParallelStrategy, UpdateDiscipline};
///
/// let averaging = ParallelStrategy::PureUda { segments: 4 };
/// let hogwild = ParallelStrategy::SharedMemory {
///     workers: 4,
///     discipline: UpdateDiscipline::NoLock,
/// };
/// assert_eq!(averaging.label(), "PureUDA");
/// assert_eq!(hogwild.label(), "NoLock");
/// assert_eq!(averaging.workers(), hogwild.workers());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Shared-nothing model averaging through the UDA `merge` function.
    PureUda {
        /// Number of segments (one worker thread per segment).
        segments: usize,
    },
    /// Concurrent updates to a model in shared memory.
    SharedMemory {
        /// Number of worker threads.
        workers: usize,
        /// Update discipline.
        discipline: UpdateDiscipline,
    },
}

impl ParallelStrategy {
    /// Human-readable name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ParallelStrategy::PureUda { .. } => "PureUDA",
            ParallelStrategy::SharedMemory { discipline, .. } => discipline.label(),
        }
    }

    /// Number of workers the strategy employs.
    pub fn workers(&self) -> usize {
        match *self {
            ParallelStrategy::PureUda { segments } => segments,
            ParallelStrategy::SharedMemory { workers, .. } => workers,
        }
    }
}

/// Per-epoch measurements specific to parallel runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelEpochStats {
    /// Time spent in the parallel gradient pass (excludes shuffle and loss).
    /// When an epoch needed divergence retries, this accumulates the passes.
    pub gradient_duration: Duration,
    /// Divergence recoveries (restore + step-size backoff) consumed while
    /// producing this epoch. Zero on the fault-free path.
    pub retries: u32,
}

/// Trainer that runs each epoch's gradient pass in parallel.
///
/// A drop-in parallel counterpart to [`crate::Trainer`]: same
/// [`TrainerConfig`], same epoch loop, but each epoch's gradient pass is
/// spread across worker threads according to the chosen
/// [`ParallelStrategy`]:
///
/// ```
/// use bismarck_core::tasks::LogisticRegressionTask;
/// use bismarck_core::{ParallelStrategy, ParallelTrainer, TrainerConfig};
/// use bismarck_storage::{Column, DataType, Schema, Table, Value};
/// use bismarck_uda::ConvergenceTest;
///
/// let schema = Schema::new(vec![
///     Column::new("vec", DataType::DenseVec),
///     Column::new("label", DataType::Double),
/// ])?;
/// let mut table = Table::new("points", schema);
/// for (x, y) in [([2.0, 0.5], 1.0), ([-1.5, 0.8], -1.0), ([1.0, 1.0], 1.0)] {
///     table.insert(vec![Value::from(x.to_vec()), Value::Double(y)])?;
/// }
///
/// let task = LogisticRegressionTask::new(0, 1, 2);
/// let config = TrainerConfig::default()
///     .with_convergence(ConvergenceTest::FixedEpochs(5));
/// let strategy = ParallelStrategy::PureUda { segments: 2 };
/// let (trained, stats) = ParallelTrainer::new(&task, config, strategy).train(&table);
///
/// assert_eq!(trained.epochs(), 5);
/// assert_eq!(stats.len(), 5); // per-epoch parallel-pass measurements
/// # Ok::<(), bismarck_storage::StorageError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelTrainer<'a, T: IgdTask> {
    task: &'a T,
    config: TrainerConfig,
    strategy: ParallelStrategy,
}

impl<'a, T: IgdTask> ParallelTrainer<'a, T> {
    /// Create a parallel trainer.
    pub fn new(task: &'a T, config: TrainerConfig, strategy: ParallelStrategy) -> Self {
        ParallelTrainer {
            task,
            config,
            strategy,
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> ParallelStrategy {
        self.strategy
    }

    /// Train on a table starting from the task's initial model.
    ///
    /// Infallible wrapper over [`Self::try_train`]: failures (worker panic,
    /// exhausted divergence budget, checkpoint I/O error) panic with the
    /// error message — the historical behavior — while a cooperative
    /// interrupt returns the last completed epoch's model.
    pub fn train<S: TupleScan + ?Sized>(
        &self,
        data: &S,
    ) -> (TrainedModel, Vec<ParallelEpochStats>) {
        self.train_from(data, self.task.initial_model())
    }

    /// Train starting from a caller-provided model. See [`Self::train`] for
    /// how failures surface.
    pub fn train_from<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        initial_model: Vec<f64>,
    ) -> (TrainedModel, Vec<ParallelEpochStats>) {
        let (result, stats) = self.try_train_impl(data, initial_model, None);
        (unwrap_trained(result), stats)
    }

    /// Fallible training from the task's initial model.
    pub fn try_train<S: TupleScan + ?Sized>(
        &self,
        data: &S,
    ) -> Result<(TrainedModel, Vec<ParallelEpochStats>), TrainError> {
        self.try_train_from(data, self.task.initial_model())
    }

    /// Fallible training from a caller-provided model.
    ///
    /// A panic in any gradient worker is caught, the epoch's partial updates
    /// are discarded, and the run reports [`TrainError::WorkerPanic`]
    /// carrying the last completed epoch's (finite) model instead of
    /// aborting the process.
    pub fn try_train_from<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        initial_model: Vec<f64>,
    ) -> Result<(TrainedModel, Vec<ParallelEpochStats>), TrainError> {
        let (result, stats) = self.try_train_impl(data, initial_model, None);
        result.map(|trained| (trained, stats))
    }

    /// Resume a checkpointed parallel run. The same validation as
    /// [`crate::Trainer::resume_from`] applies; note that only the `Lock`
    /// discipline (and single-worker runs) are deterministic enough for the
    /// resumed trajectory to match an uninterrupted one bitwise — AIG/NoLock
    /// runs are racy by design, with or without checkpoints.
    pub fn resume_from<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        path: impl AsRef<Path>,
    ) -> Result<(TrainedModel, Vec<ParallelEpochStats>), TrainError> {
        let checkpoint = TrainingCheckpoint::read(path.as_ref())?;
        validate_checkpoint(&checkpoint, self.task, &self.config)?;
        let model = checkpoint.model.clone();
        let resume = ResumeState {
            next_epoch: checkpoint.next_epoch,
            alpha_scale: checkpoint.alpha_scale,
            retries_used: checkpoint.retries_used,
            losses: checkpoint.losses,
        };
        let (result, stats) = self.try_train_impl(data, model, Some(resume));
        result.map(|trained| (trained, stats))
    }

    fn try_train_impl<S: TupleScan + ?Sized>(
        &self,
        data: &S,
        initial_model: Vec<f64>,
        resume: Option<ResumeState>,
    ) -> (Result<TrainedModel, TrainError>, Vec<ParallelEpochStats>) {
        let task = self.task;
        let config = &self.config;
        let strategy = self.strategy;
        let (start_epoch, mut alpha_scale, mut retries_used, prior_losses) = match resume {
            Some(r) => (r.next_epoch, r.alpha_scale, r.retries_used, r.losses),
            None => (0, 1.0, 0, Vec::new()),
        };
        let mut model = initial_model;
        if let Err(e) = validate_serving(config, model.len()) {
            return (Err(e), Vec::new());
        }
        let mut last_good = model.clone();
        let mut losses_so_far = prior_losses.clone();
        let mut stats = Vec::new();
        let mut cached_permutation: Option<Vec<usize>> = None;
        let runner = EpochRunner::new(config.convergence);

        let (history, aborted) =
            runner.try_run_from(start_epoch, prior_records(&prior_losses), |epoch| {
                let mut epoch_retries = 0u32;
                let mut gradient_duration = Duration::ZERO;
                loop {
                    if stop_requested(config) {
                        write_interrupt_checkpoint(
                            task,
                            config,
                            epoch,
                            &last_good,
                            alpha_scale,
                            retries_used,
                            &losses_so_far,
                        )?;
                        return Err(EpochAbort::Interrupted);
                    }

                    // Reorder if requested (timed, as in the sequential
                    // trainer).
                    let shuffle_start = Instant::now();
                    let permutation: Option<&[usize]> = match config.scan_order {
                        ScanOrder::Clustered => None,
                        ScanOrder::ShuffleOnce { .. } => {
                            if cached_permutation.is_none() {
                                cached_permutation =
                                    config.scan_order.permutation(data.tuple_count(), epoch);
                            }
                            cached_permutation.as_deref()
                        }
                        ScanOrder::ShuffleAlways { .. } => {
                            cached_permutation =
                                config.scan_order.permutation(data.tuple_count(), epoch);
                            cached_permutation.as_deref()
                        }
                    };
                    let shuffle_duration = if config.scan_order.shuffles_at(epoch) {
                        shuffle_start.elapsed()
                    } else {
                        Duration::ZERO
                    };

                    let alpha = config.step_size.at(epoch) * alpha_scale;
                    let gradient_start = Instant::now();
                    let current = std::mem::take(&mut model);
                    let pass = match strategy {
                        ParallelStrategy::PureUda { segments } => {
                            run_pure_uda_epoch(task, data, current, alpha, segments)
                        }
                        ParallelStrategy::SharedMemory {
                            workers,
                            discipline,
                        } => run_shared_memory_epoch(
                            task,
                            data,
                            permutation,
                            current,
                            alpha,
                            workers,
                            discipline,
                        ),
                    };
                    gradient_duration += gradient_start.elapsed();
                    match pass {
                        Ok(new_model) => model = new_model,
                        // A worker panic aborts the run: the epoch's partial
                        // updates are gone (and under AIG/NoLock the shared
                        // model may hold a half-applied epoch), so the only
                        // trustworthy state is the last-good snapshot carried
                        // by the error.
                        Err(panic) => return Err(panic),
                    }

                    let mut loss = task.regularizer(&model);
                    data.scan_tuples(&mut |tuple| loss += task.example_loss(&model, tuple));

                    let healthy = loss.is_finite() && model.iter().all(|v| v.is_finite());
                    if !healthy {
                        if retries_used < config.backoff.max_retries {
                            retries_used += 1;
                            epoch_retries += 1;
                            alpha_scale *= config.backoff.factor;
                            model.clear();
                            model.extend_from_slice(&last_good);
                            // Keep serving the restored finite model while
                            // the retry runs.
                            publish_serving(config, &model);
                            continue;
                        }
                        if config.backoff.max_retries > 0 {
                            return Err(EpochAbort::Diverged {
                                retries: retries_used,
                            });
                        }
                    } else {
                        last_good.clear();
                        last_good.extend_from_slice(&model);
                        publish_serving(config, &model);
                    }
                    losses_so_far.push(loss);
                    if healthy {
                        maybe_write_checkpoint(
                            task,
                            config,
                            epoch + 1,
                            &model,
                            alpha_scale,
                            retries_used,
                            &losses_so_far,
                        )?;
                    }
                    stats.push(ParallelEpochStats {
                        gradient_duration,
                        retries: epoch_retries,
                    });
                    return Ok(EpochOutcome {
                        loss,
                        gradient_norm: None,
                        shuffle_duration,
                        retries: epoch_retries,
                    });
                }
            });

        let task_name = task.name();
        let result = match aborted {
            None => Ok(TrainedModel {
                task_name,
                model,
                history,
            }),
            Some((epoch, abort)) => Err(abort.into_train_error(
                epoch,
                TrainedModel {
                    task_name,
                    model: last_good,
                    history,
                },
            )),
        };
        (result, stats)
    }
}

/// One pure-UDA (shared-nothing) epoch: segment-parallel aggregation with
/// model-averaging merge. Segments see their rows in clustered order, which
/// matches how a parallel engine distributes tuples to segments. A worker
/// panic is isolated by the segmented executor and surfaced as an abort.
fn run_pure_uda_epoch<T: IgdTask, S: TupleScan + ?Sized>(
    task: &T,
    data: &S,
    model: Vec<f64>,
    alpha: f64,
    segments: usize,
) -> Result<Vec<f64>, EpochAbort> {
    let aggregate = IgdAggregate::new(task, alpha, model);
    match try_run_segmented_parallel(&aggregate, data, segments.max(1)) {
        Ok(state) => Ok(state.model.into_vec()),
        Err(panic) => Err(EpochAbort::WorkerPanic {
            failed_workers: panic.failed_workers,
            message: panic.message,
        }),
    }
}

/// Collect per-worker `catch_unwind` results, folding any panics into an
/// [`EpochAbort::WorkerPanic`].
fn collect_worker_outcomes(outcomes: Vec<std::thread::Result<()>>) -> Result<(), EpochAbort> {
    let mut failed_workers = 0usize;
    let mut message = String::new();
    for outcome in outcomes {
        if let Err(payload) = outcome {
            failed_workers += 1;
            if message.is_empty() {
                message = panic_message(payload.as_ref());
            }
        }
    }
    if failed_workers > 0 {
        Err(EpochAbort::WorkerPanic {
            failed_workers,
            message,
        })
    } else {
        Ok(())
    }
}

/// One shared-memory epoch with the chosen update discipline.
///
/// Each worker body runs under `catch_unwind` so one panicking
/// `gradient_step` cannot take down the process; the surviving workers
/// finish their tuples and the epoch reports the failure instead.
///
/// Unwind safety: the state the workers share is plain `f64` data — a
/// `Vec<f64>` behind a `parking_lot::Mutex` (which does not poison; the
/// guard is released during unwind) or `AtomicU64` cells in [`SharedModel`]
/// — with no invariants coupling components. A caught panic can at worst
/// leave a *partially updated* model, and the caller never uses a failed
/// epoch's model: it restores the last-good snapshot carried by the error.
/// That makes `AssertUnwindSafe` sound here.
fn run_shared_memory_epoch<T: IgdTask, S: TupleScan + ?Sized>(
    task: &T,
    data: &S,
    permutation: Option<&[usize]>,
    model: Vec<f64>,
    alpha: f64,
    workers: usize,
    discipline: UpdateDiscipline,
) -> Result<Vec<f64>, EpochAbort> {
    let workers = workers.max(1);
    let n = data.tuple_count();
    let ranges = segment_ranges(permutation.map_or(n, <[usize]>::len), workers);

    // Rows each worker visits: a slice of the permutation, or a contiguous
    // range of storage order (scanned natively — no index materialization).
    enum WorkerRows<'p> {
        Range(usize, usize),
        Perm(&'p [usize]),
    }
    fn visit<S: TupleScan + ?Sized>(data: &S, rows: &WorkerRows<'_>, f: &mut dyn FnMut(&Tuple)) {
        match rows {
            WorkerRows::Range(start, end) => data.scan_tuples_range(*start, *end, f),
            WorkerRows::Perm(perm) => data.scan_tuples_permuted(perm, f),
        }
    }
    let worker_rows: Vec<WorkerRows> = ranges
        .iter()
        .map(|&(start, end)| match permutation {
            Some(perm) => WorkerRows::Perm(&perm[start..end]),
            None => WorkerRows::Range(start, end),
        })
        .collect();

    let final_model = match discipline {
        UpdateDiscipline::Lock => {
            let locked = Mutex::new(model);
            let outcomes = std::thread::scope(|scope| {
                let handles: Vec<_> = worker_rows
                    .iter()
                    .map(|rows| {
                        let locked = &locked;
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| {
                                visit(data, rows, &mut |tuple| {
                                    let mut guard = locked.lock();
                                    let mut store = SliceModelStore::new(guard.as_mut_slice());
                                    task.gradient_step(&mut store, tuple, alpha);
                                    if task.proximal_policy() == ProximalPolicy::PerStep {
                                        task.proximal_step(guard.as_mut_slice(), alpha);
                                    }
                                });
                            }))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .expect("worker threads only panic inside catch_unwind")
                    })
                    .collect::<Vec<_>>()
            });
            collect_worker_outcomes(outcomes)?;
            locked.into_inner()
        }
        UpdateDiscipline::Aig | UpdateDiscipline::NoLock => {
            let shared = SharedModel::from_slice(&model);
            let outcomes = std::thread::scope(|scope| {
                let handles: Vec<_> = worker_rows
                    .iter()
                    .map(|rows| {
                        let shared = shared.clone();
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| match discipline {
                                UpdateDiscipline::Aig => {
                                    let mut store = AigStore::new(shared);
                                    visit(data, rows, &mut |tuple| {
                                        task.gradient_step(&mut store, tuple, alpha);
                                    });
                                }
                                _ => {
                                    let mut store = NoLockStore::new(shared);
                                    visit(data, rows, &mut |tuple| {
                                        task.gradient_step(&mut store, tuple, alpha);
                                    });
                                }
                            }))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .expect("worker threads only panic inside catch_unwind")
                    })
                    .collect::<Vec<_>>()
            });
            collect_worker_outcomes(outcomes)?;
            shared.snapshot()
        }
    };
    let mut final_model = final_model;

    // Per-epoch proximal step (and, for the lock-free disciplines, the
    // per-step operator demoted to per-epoch as documented in `task`).
    match task.proximal_policy() {
        ProximalPolicy::PerEpoch => task.proximal_step(&mut final_model, alpha),
        ProximalPolicy::PerStep => {
            if discipline != UpdateDiscipline::Lock {
                task.proximal_step(&mut final_model, alpha);
            }
        }
        ProximalPolicy::None => {}
    }
    Ok(final_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepsize::StepSizeSchedule;
    use crate::tasks::{LogisticRegressionTask, PortfolioTask, SvmTask};
    use crate::trainer::Trainer;
    use bismarck_storage::{Column, DataType, Schema, Table, Value};
    use bismarck_uda::ConvergenceTest;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn classification_table(n: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("data", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.2 + rng.gen_range(-0.4..0.4),
                -y * 0.7 + rng.gen_range(-0.4..0.4),
                rng.gen_range(-0.4..0.4),
            ];
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    fn config(epochs: usize) -> TrainerConfig {
        TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(epochs))
    }

    #[test]
    fn pure_uda_trains_to_a_reasonable_model() {
        let table = classification_table(300, 3);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let trainer =
            ParallelTrainer::new(&task, config(10), ParallelStrategy::PureUda { segments: 4 });
        let (trained, stats) = trainer.train(&table);
        assert_eq!(stats.len(), trained.epochs());
        let seq = Trainer::new(&task, config(10)).train(&table);
        // Model averaging loses some quality but should land in the same
        // ballpark as the sequential run.
        assert!(trained.final_loss().unwrap() <= seq.final_loss().unwrap() * 2.0 + 1.0);
    }

    #[test]
    fn all_shared_memory_disciplines_reduce_loss() {
        let table = classification_table(300, 5);
        let task = SvmTask::new(0, 1, 3);
        let zero_loss: f64 = {
            let zero = task.initial_model();
            table.scan().map(|tup| task.example_loss(&zero, tup)).sum()
        };
        for discipline in [
            UpdateDiscipline::Lock,
            UpdateDiscipline::Aig,
            UpdateDiscipline::NoLock,
        ] {
            let trainer = ParallelTrainer::new(
                &task,
                config(8),
                ParallelStrategy::SharedMemory {
                    workers: 4,
                    discipline,
                },
            );
            let (trained, _) = trainer.train(&table);
            assert!(
                trained.final_loss().unwrap() < zero_loss * 0.5,
                "{} did not reduce loss",
                discipline.label()
            );
        }
    }

    #[test]
    fn shared_memory_respects_scan_order_permutation() {
        let table = classification_table(100, 9);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let cfg = config(3).with_scan_order(ScanOrder::ShuffleAlways { seed: 1 });
        let trainer = ParallelTrainer::new(
            &task,
            cfg,
            ParallelStrategy::SharedMemory {
                workers: 2,
                discipline: UpdateDiscipline::NoLock,
            },
        );
        let (trained, _) = trainer.train(&table);
        assert_eq!(trained.epochs(), 3);
        assert!(trained.final_loss().unwrap().is_finite());
    }

    #[test]
    fn single_worker_shared_memory_matches_sequential_closely() {
        let table = classification_table(150, 2);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let cfg = config(5).with_scan_order(ScanOrder::Clustered);
        let (par, _) = ParallelTrainer::new(
            &task,
            cfg.clone(),
            ParallelStrategy::SharedMemory {
                workers: 1,
                discipline: UpdateDiscipline::Lock,
            },
        )
        .train(&table);
        let seq = Trainer::new(&task, cfg).train(&table);
        let diff: f64 = par
            .model
            .iter()
            .zip(seq.model.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff < 1e-9,
            "single-worker Lock should match sequential exactly, diff={diff}"
        );
    }

    #[test]
    fn portfolio_projection_is_applied_in_all_disciplines() {
        let schema = Schema::new(vec![Column::new("returns", DataType::DenseVec)]).unwrap();
        let mut table = Table::new("returns", schema);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..60 {
            let r = vec![
                0.05 + rng.gen_range(-0.1..0.1),
                0.01 + rng.gen_range(-0.01..0.01),
                0.03 + rng.gen_range(-0.03..0.03),
            ];
            table.insert(vec![Value::from(r)]).unwrap();
        }
        let expected = vec![0.05, 0.01, 0.03];
        let task = PortfolioTask::new(0, expected.clone(), expected, 1.0, 60);
        for strategy in [
            ParallelStrategy::PureUda { segments: 3 },
            ParallelStrategy::SharedMemory {
                workers: 3,
                discipline: UpdateDiscipline::NoLock,
            },
            ParallelStrategy::SharedMemory {
                workers: 3,
                discipline: UpdateDiscipline::Lock,
            },
        ] {
            let (trained, _) = ParallelTrainer::new(&task, config(5), strategy).train(&table);
            let sum: f64 = trained.model.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "{}: sum {sum}", strategy.label());
            assert!(trained.model.iter().all(|&v| v >= -1e-9));
        }
    }

    #[test]
    fn strategy_labels_and_workers() {
        assert_eq!(ParallelStrategy::PureUda { segments: 8 }.label(), "PureUDA");
        assert_eq!(ParallelStrategy::PureUda { segments: 8 }.workers(), 8);
        let sm = ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Aig,
        };
        assert_eq!(sm.label(), "AIG");
        assert_eq!(sm.workers(), 4);
        assert_eq!(UpdateDiscipline::NoLock.label(), "NoLock");
        assert_eq!(UpdateDiscipline::Lock.label(), "Lock");
    }
}
