//! Parallelizing the IGD aggregate (Section 3.3).
//!
//! Two families of schemes, both built from standard engine facilities:
//!
//! * **Pure UDA** — shared-nothing parallelism through the aggregate's
//!   `merge` function: each segment trains its own model copy over its slice
//!   of the data and the partial models are averaged (Zinkevich et al.).
//!   Near-linear speed-up of the gradient pass, but the model averaging
//!   costs convergence quality (Figure 9(A)).
//! * **Shared-memory UDA** — the model lives in user-managed shared memory
//!   and all workers update it concurrently, with one of three disciplines:
//!   whole-model **Lock**, per-component **AIG** (compare-and-swap), or
//!   **NoLock** (Hogwild!). The paper adopts NoLock for Bismarck because it
//!   converges like Lock but scales like the lock-free scheme.

use std::time::{Duration, Instant};

use bismarck_storage::{segment_ranges, ScanOrder, SharedModel, Table};
use bismarck_uda::{run_segmented_parallel, EpochOutcome, EpochRunner};
use parking_lot::Mutex;

use crate::igd::IgdAggregate;
use crate::model::{AigStore, NoLockStore, SliceModelStore};
use crate::task::{IgdTask, ProximalPolicy};
use crate::trainer::{TrainedModel, TrainerConfig};

/// How shared-memory workers update the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDiscipline {
    /// Serialize every gradient step behind a whole-model mutex.
    Lock,
    /// Per-component atomic adds (compare-and-swap loops).
    Aig,
    /// No synchronization at all (Hogwild!).
    NoLock,
}

impl UpdateDiscipline {
    /// Human-readable name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateDiscipline::Lock => "Lock",
            UpdateDiscipline::Aig => "AIG",
            UpdateDiscipline::NoLock => "NoLock",
        }
    }
}

/// Which parallelization scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Shared-nothing model averaging through the UDA `merge` function.
    PureUda {
        /// Number of segments (one worker thread per segment).
        segments: usize,
    },
    /// Concurrent updates to a model in shared memory.
    SharedMemory {
        /// Number of worker threads.
        workers: usize,
        /// Update discipline.
        discipline: UpdateDiscipline,
    },
}

impl ParallelStrategy {
    /// Human-readable name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ParallelStrategy::PureUda { .. } => "PureUDA",
            ParallelStrategy::SharedMemory { discipline, .. } => discipline.label(),
        }
    }

    /// Number of workers the strategy employs.
    pub fn workers(&self) -> usize {
        match *self {
            ParallelStrategy::PureUda { segments } => segments,
            ParallelStrategy::SharedMemory { workers, .. } => workers,
        }
    }
}

/// Per-epoch measurements specific to parallel runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelEpochStats {
    /// Time spent in the parallel gradient pass (excludes shuffle and loss).
    pub gradient_duration: Duration,
}

/// Trainer that runs each epoch's gradient pass in parallel.
#[derive(Debug, Clone)]
pub struct ParallelTrainer<'a, T: IgdTask> {
    task: &'a T,
    config: TrainerConfig,
    strategy: ParallelStrategy,
}

impl<'a, T: IgdTask> ParallelTrainer<'a, T> {
    /// Create a parallel trainer.
    pub fn new(task: &'a T, config: TrainerConfig, strategy: ParallelStrategy) -> Self {
        ParallelTrainer {
            task,
            config,
            strategy,
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> ParallelStrategy {
        self.strategy
    }

    /// Train on a table starting from the task's initial model.
    pub fn train(&self, table: &Table) -> (TrainedModel, Vec<ParallelEpochStats>) {
        self.train_from(table, self.task.initial_model())
    }

    /// Train starting from a caller-provided model.
    pub fn train_from(
        &self,
        table: &Table,
        initial_model: Vec<f64>,
    ) -> (TrainedModel, Vec<ParallelEpochStats>) {
        let mut model = initial_model;
        let mut stats = Vec::new();
        let mut cached_permutation: Option<Vec<usize>> = None;
        let runner = EpochRunner::new(self.config.convergence);
        let task = self.task;
        let config = self.config;
        let strategy = self.strategy;

        let history = runner.run(|epoch| {
            // Reorder if requested (timed, as in the sequential trainer).
            let shuffle_start = Instant::now();
            let permutation: Option<&[usize]> = match config.scan_order {
                ScanOrder::Clustered => None,
                ScanOrder::ShuffleOnce { .. } => {
                    if cached_permutation.is_none() {
                        cached_permutation = config.scan_order.permutation(table.len(), epoch);
                    }
                    cached_permutation.as_deref()
                }
                ScanOrder::ShuffleAlways { .. } => {
                    cached_permutation = config.scan_order.permutation(table.len(), epoch);
                    cached_permutation.as_deref()
                }
            };
            let shuffle_duration = if config.scan_order.shuffles_at(epoch) {
                shuffle_start.elapsed()
            } else {
                Duration::ZERO
            };

            let alpha = config.step_size.at(epoch);
            let gradient_start = Instant::now();
            let current = std::mem::take(&mut model);
            model = match strategy {
                ParallelStrategy::PureUda { segments } => {
                    run_pure_uda_epoch(task, table, current, alpha, segments)
                }
                ParallelStrategy::SharedMemory {
                    workers,
                    discipline,
                } => run_shared_memory_epoch(
                    task,
                    table,
                    permutation,
                    current,
                    alpha,
                    workers,
                    discipline,
                ),
            };
            let gradient_duration = gradient_start.elapsed();
            stats.push(ParallelEpochStats { gradient_duration });

            let mut loss = task.regularizer(&model);
            for tuple in table.scan() {
                loss += task.example_loss(&model, tuple);
            }
            EpochOutcome {
                loss,
                gradient_norm: None,
                shuffle_duration,
            }
        });

        (
            TrainedModel {
                task_name: self.task.name(),
                model,
                history,
            },
            stats,
        )
    }
}

/// One pure-UDA (shared-nothing) epoch: segment-parallel aggregation with
/// model-averaging merge. Segments see their rows in clustered order, which
/// matches how a parallel engine distributes tuples to segments.
fn run_pure_uda_epoch<T: IgdTask>(
    task: &T,
    table: &Table,
    model: Vec<f64>,
    alpha: f64,
    segments: usize,
) -> Vec<f64> {
    let aggregate = IgdAggregate::new(task, alpha, model);
    let state = run_segmented_parallel(&aggregate, table, segments.max(1));
    state.model.into_vec()
}

/// One shared-memory epoch with the chosen update discipline.
fn run_shared_memory_epoch<T: IgdTask>(
    task: &T,
    table: &Table,
    permutation: Option<&[usize]>,
    model: Vec<f64>,
    alpha: f64,
    workers: usize,
    discipline: UpdateDiscipline,
) -> Vec<f64> {
    let workers = workers.max(1);
    let n = table.len();
    let ranges = segment_ranges(permutation.map_or(n, <[usize]>::len), workers);

    // Row ids each worker visits: a slice of the permutation, or a contiguous
    // range of storage order.
    let worker_rows: Vec<Vec<usize>> = ranges
        .iter()
        .map(|&(start, end)| match permutation {
            Some(perm) => perm[start..end].to_vec(),
            None => (start..end).collect(),
        })
        .collect();

    let mut final_model = match discipline {
        UpdateDiscipline::Lock => {
            let locked = Mutex::new(model);
            std::thread::scope(|scope| {
                for rows in &worker_rows {
                    let locked = &locked;
                    scope.spawn(move || {
                        for &row in rows {
                            let Ok(tuple) = table.get(row) else { continue };
                            let mut guard = locked.lock();
                            let mut store = SliceModelStore::new(guard.as_mut_slice());
                            task.gradient_step(&mut store, tuple, alpha);
                            if task.proximal_policy() == ProximalPolicy::PerStep {
                                task.proximal_step(guard.as_mut_slice(), alpha);
                            }
                        }
                    });
                }
            });
            locked.into_inner()
        }
        UpdateDiscipline::Aig | UpdateDiscipline::NoLock => {
            let shared = SharedModel::from_slice(&model);
            std::thread::scope(|scope| {
                for rows in &worker_rows {
                    let shared = shared.clone();
                    scope.spawn(move || match discipline {
                        UpdateDiscipline::Aig => {
                            let mut store = AigStore::new(shared);
                            for &row in rows {
                                if let Ok(tuple) = table.get(row) {
                                    task.gradient_step(&mut store, tuple, alpha);
                                }
                            }
                        }
                        _ => {
                            let mut store = NoLockStore::new(shared);
                            for &row in rows {
                                if let Ok(tuple) = table.get(row) {
                                    task.gradient_step(&mut store, tuple, alpha);
                                }
                            }
                        }
                    });
                }
            });
            shared.snapshot()
        }
    };

    // Per-epoch proximal step (and, for the lock-free disciplines, the
    // per-step operator demoted to per-epoch as documented in `task`).
    match task.proximal_policy() {
        ProximalPolicy::PerEpoch => task.proximal_step(&mut final_model, alpha),
        ProximalPolicy::PerStep => {
            if discipline != UpdateDiscipline::Lock {
                task.proximal_step(&mut final_model, alpha);
            }
        }
        ProximalPolicy::None => {}
    }
    final_model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepsize::StepSizeSchedule;
    use crate::tasks::{LogisticRegressionTask, PortfolioTask, SvmTask};
    use crate::trainer::Trainer;
    use bismarck_storage::{Column, DataType, Schema, Value};
    use bismarck_uda::ConvergenceTest;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn classification_table(n: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Column::new("vec", DataType::DenseVec),
            Column::new("label", DataType::Double),
        ])
        .unwrap();
        let mut t = Table::new("data", schema);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = vec![
                y * 1.2 + rng.gen_range(-0.4..0.4),
                -y * 0.7 + rng.gen_range(-0.4..0.4),
                rng.gen_range(-0.4..0.4),
            ];
            t.insert(vec![Value::from(x), Value::Double(y)]).unwrap();
        }
        t
    }

    fn config(epochs: usize) -> TrainerConfig {
        TrainerConfig::default()
            .with_step_size(StepSizeSchedule::Constant(0.2))
            .with_convergence(ConvergenceTest::FixedEpochs(epochs))
    }

    #[test]
    fn pure_uda_trains_to_a_reasonable_model() {
        let table = classification_table(300, 3);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let trainer =
            ParallelTrainer::new(&task, config(10), ParallelStrategy::PureUda { segments: 4 });
        let (trained, stats) = trainer.train(&table);
        assert_eq!(stats.len(), trained.epochs());
        let seq = Trainer::new(&task, config(10)).train(&table);
        // Model averaging loses some quality but should land in the same
        // ballpark as the sequential run.
        assert!(trained.final_loss().unwrap() <= seq.final_loss().unwrap() * 2.0 + 1.0);
    }

    #[test]
    fn all_shared_memory_disciplines_reduce_loss() {
        let table = classification_table(300, 5);
        let task = SvmTask::new(0, 1, 3);
        let zero_loss: f64 = {
            let zero = task.initial_model();
            table.scan().map(|tup| task.example_loss(&zero, tup)).sum()
        };
        for discipline in [
            UpdateDiscipline::Lock,
            UpdateDiscipline::Aig,
            UpdateDiscipline::NoLock,
        ] {
            let trainer = ParallelTrainer::new(
                &task,
                config(8),
                ParallelStrategy::SharedMemory {
                    workers: 4,
                    discipline,
                },
            );
            let (trained, _) = trainer.train(&table);
            assert!(
                trained.final_loss().unwrap() < zero_loss * 0.5,
                "{} did not reduce loss",
                discipline.label()
            );
        }
    }

    #[test]
    fn shared_memory_respects_scan_order_permutation() {
        let table = classification_table(100, 9);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let cfg = config(3).with_scan_order(ScanOrder::ShuffleAlways { seed: 1 });
        let trainer = ParallelTrainer::new(
            &task,
            cfg,
            ParallelStrategy::SharedMemory {
                workers: 2,
                discipline: UpdateDiscipline::NoLock,
            },
        );
        let (trained, _) = trainer.train(&table);
        assert_eq!(trained.epochs(), 3);
        assert!(trained.final_loss().unwrap().is_finite());
    }

    #[test]
    fn single_worker_shared_memory_matches_sequential_closely() {
        let table = classification_table(150, 2);
        let task = LogisticRegressionTask::new(0, 1, 3);
        let cfg = config(5).with_scan_order(ScanOrder::Clustered);
        let (par, _) = ParallelTrainer::new(
            &task,
            cfg,
            ParallelStrategy::SharedMemory {
                workers: 1,
                discipline: UpdateDiscipline::Lock,
            },
        )
        .train(&table);
        let seq = Trainer::new(&task, cfg).train(&table);
        let diff: f64 = par
            .model
            .iter()
            .zip(seq.model.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff < 1e-9,
            "single-worker Lock should match sequential exactly, diff={diff}"
        );
    }

    #[test]
    fn portfolio_projection_is_applied_in_all_disciplines() {
        let schema = Schema::new(vec![Column::new("returns", DataType::DenseVec)]).unwrap();
        let mut table = Table::new("returns", schema);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..60 {
            let r = vec![
                0.05 + rng.gen_range(-0.1..0.1),
                0.01 + rng.gen_range(-0.01..0.01),
                0.03 + rng.gen_range(-0.03..0.03),
            ];
            table.insert(vec![Value::from(r)]).unwrap();
        }
        let expected = vec![0.05, 0.01, 0.03];
        let task = PortfolioTask::new(0, expected.clone(), expected, 1.0, 60);
        for strategy in [
            ParallelStrategy::PureUda { segments: 3 },
            ParallelStrategy::SharedMemory {
                workers: 3,
                discipline: UpdateDiscipline::NoLock,
            },
            ParallelStrategy::SharedMemory {
                workers: 3,
                discipline: UpdateDiscipline::Lock,
            },
        ] {
            let (trained, _) = ParallelTrainer::new(&task, config(5), strategy).train(&table);
            let sum: f64 = trained.model.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "{}: sum {sum}", strategy.label());
            assert!(trained.model.iter().all(|&v| v >= -1e-9));
        }
    }

    #[test]
    fn strategy_labels_and_workers() {
        assert_eq!(ParallelStrategy::PureUda { segments: 8 }.label(), "PureUDA");
        assert_eq!(ParallelStrategy::PureUda { segments: 8 }.workers(), 8);
        let sm = ParallelStrategy::SharedMemory {
            workers: 4,
            discipline: UpdateDiscipline::Aig,
        };
        assert_eq!(sm.label(), "AIG");
        assert_eq!(sm.workers(), 4);
        assert_eq!(UpdateDiscipline::NoLock.label(), "NoLock");
        assert_eq!(UpdateDiscipline::Lock.label(), "Lock");
    }
}
