//! Portfolio optimization (Figure 1(B)): balance expected return against risk
//! with the allocation constrained to the probability simplex. The simplex
//! constraint is enforced by the proximal-point projection applied after
//! every IGD step (Appendix A).
//!
//! Run with `cargo run --release --example portfolio_optimization`.

use bismarck_core::tasks::PortfolioTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{returns_table, ReturnsConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;

fn main() {
    // Four assets: a volatile growth stock, a bond, an index fund and cash.
    let names = ["growth", "bond", "index", "cash"];
    let config = ReturnsConfig {
        days: 500,
        mean_returns: vec![0.09, 0.03, 0.06, 0.01],
        volatilities: vec![0.30, 0.04, 0.15, 0.005],
        seed: 12,
    };
    let returns = returns_table("daily_returns", &config);
    println!("{} trading days, {} assets", returns.len(), names.len());

    for &gamma in &[0.5, 5.0, 50.0] {
        let task = PortfolioTask::new(
            0,
            config.mean_returns.clone(),
            config.mean_returns.clone(),
            gamma,
            returns.len(),
        );
        let trainer_config = TrainerConfig::default()
            .with_scan_order(ScanOrder::ShuffleOnce { seed: 2 })
            .with_step_size(StepSizeSchedule::Diminishing { initial: 0.5 })
            .with_convergence(ConvergenceTest::paper_default(40));
        let trained = Trainer::new(&task, trainer_config).train(&returns);
        let allocation = &trained.model;
        let total: f64 = allocation.iter().sum();
        print!("risk aversion {gamma:5.1}:  ");
        for (name, weight) in names.iter().zip(allocation.iter()) {
            print!("{name}={:.2}  ", weight);
        }
        println!(
            "(sum {total:.3}, expected return {:.2}%)",
            task.expected_return(allocation) * 100.0
        );
    }
    println!("\nHigher risk aversion shifts weight from the volatile growth asset");
    println!("towards bonds and cash while the allocation stays on the simplex.");
}
