//! Kalman-filter style smoothing of a noisy sensor stream (Figure 1(B)).
//!
//! The model is the whole latent trajectory `w_1..w_T`; each observation's
//! incremental gradient pulls its own state toward the measurement while the
//! smoothness term keeps neighbouring states close. Varying the smoothness
//! weight trades fidelity against noise suppression.
//!
//! Run with `cargo run --release --example kalman_smoothing`.

use bismarck_core::tasks::KalmanTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{timeseries_table, TimeSeriesConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;

fn main() {
    let config = TimeSeriesConfig {
        horizon: 300,
        state_dim: 2,
        noise: 0.4,
        ..Default::default()
    };
    let observations = timeseries_table("sensor_stream", config);
    println!(
        "{} noisy observations of a {}-dimensional signal",
        observations.len(),
        2
    );

    for &smoothness in &[0.0, 2.0, 20.0] {
        let task = KalmanTask::new(0, 1, config.horizon, config.state_dim, smoothness);
        // The smoothness term raises the curvature of each per-example loss,
        // so the stable step size shrinks roughly like 1 / (1 + 2λ).
        let step = 0.5 / (1.0 + 2.0 * smoothness);
        let trainer = Trainer::new(
            &task,
            TrainerConfig::default()
                .with_scan_order(ScanOrder::ShuffleOnce { seed: 5 })
                .with_step_size(StepSizeSchedule::Diminishing { initial: step })
                .with_convergence(ConvergenceTest::FixedEpochs(60)),
        );
        let trained = trainer.train(&observations);

        // Measure how rough the fitted trajectory is: the average squared
        // jump between consecutive states. Higher smoothness should shrink it.
        let mut roughness = 0.0;
        for t in 1..config.horizon {
            let prev = task.state(&trained.model, t - 1);
            let curr = task.state(&trained.model, t);
            roughness += prev
                .iter()
                .zip(&curr)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        roughness /= (config.horizon - 1) as f64;

        println!(
            "smoothness λ = {smoothness:>5.1}: objective = {:.2}, mean squared state jump = {:.5}",
            trained.final_loss().unwrap_or(f64::NAN),
            roughness
        );
    }

    println!(
        "\nLarger λ yields a visibly smoother trajectory at the cost of a slightly \
         higher data-fit term — the trade-off the Kalman objective encodes."
    );
}
