//! Quickstart: train an SVM inside the mini-RDBMS exactly the way the paper's
//! end-user does it —
//! `SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')` — then apply
//! the persisted model to the data and report accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

use bismarck_core::frontend::{svm_predict, svm_train};
use bismarck_core::metrics::classification_accuracy;
use bismarck_core::{StepSizeSchedule, TrainerConfig};
use bismarck_datagen::{dense_classification, DenseClassificationConfig};
use bismarck_storage::{Database, ScanOrder};
use bismarck_uda::ConvergenceTest;

fn main() {
    // 1. A database with a labeled training table (Forest-like: 54 dense
    //    features, ±1 labels, stored clustered by label as an RDBMS might).
    let mut db = Database::new();
    let table = dense_classification(
        "LabeledPapers",
        DenseClassificationConfig {
            examples: 5_000,
            dimension: 54,
            ..Default::default()
        },
    );
    db.register_table(table).unwrap();

    // 2. Train: the Bismarck IGD-as-UDA architecture with the paper's
    //    recommended shuffle-once policy and 0.1% convergence tolerance.
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 7 })
        .with_step_size(StepSizeSchedule::Diminishing { initial: 0.5 })
        .with_convergence(ConvergenceTest::paper_default(30));
    let summary = svm_train(&mut db, "myModel", "LabeledPapers", "vec", "label", config)
        .expect("training succeeds");
    println!(
        "trained {} model: dimension={}, epochs={}, converged={}, final objective={:.2}",
        summary.task, summary.dimension, summary.epochs, summary.converged, summary.final_loss
    );

    // 3. Predict with the persisted model table and measure training accuracy.
    let predictions = svm_predict(&db, "myModel", "LabeledPapers", "vec").expect("predict");
    let labels: Vec<f64> = db
        .table("LabeledPapers")
        .expect("table exists")
        .scan()
        .map(|t| t.get_double(2).unwrap_or(0.0))
        .collect();
    let accuracy = classification_accuracy(&predictions, &labels);
    println!("training accuracy: {:.1}%", accuracy * 100.0);
    println!(
        "model persisted as table 'myModel' ({} rows)",
        db.table("myModel").unwrap().len()
    );
}
