//! Text chunking with a linear-chain CRF — the paper's "next generation"
//! in-RDBMS task (CoNLL workload, Figure 7(B)). Trains the CRF with the
//! shared-memory NoLock parallel IGD and evaluates token-level accuracy with
//! Viterbi decoding.
//!
//! Run with `cargo run --release --example text_chunking_crf`.

use bismarck_core::metrics::sequence_accuracy;
use bismarck_core::tasks::CrfTask;
use bismarck_core::{
    ParallelStrategy, ParallelTrainer, StepSizeSchedule, TrainerConfig, UpdateDiscipline,
};
use bismarck_datagen::{labeled_sequences, SequenceConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;

fn main() {
    let (num_features, num_labels) = (1_500, 5);
    let sentences = labeled_sequences(
        "chunking",
        SequenceConfig {
            sentences: 400,
            num_features,
            num_labels,
            feature_fidelity: 0.8,
            label_stickiness: 0.7,
            seed: 8,
            ..Default::default()
        },
    );
    println!(
        "{} sentences, {num_features} observation features, {num_labels} chunk labels",
        sentences.len()
    );

    let task = CrfTask::new(0, num_features, num_labels).with_l2(1e-4);
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 4 })
        .with_step_size(StepSizeSchedule::Constant(0.1))
        .with_convergence(ConvergenceTest::paper_default(12));
    let trainer = ParallelTrainer::new(
        &task,
        config,
        ParallelStrategy::SharedMemory {
            workers: 2,
            discipline: UpdateDiscipline::NoLock,
        },
    );
    let (trained, _) = trainer.train(&sentences);
    println!(
        "trained in {} epochs, final -log-likelihood {:.1}",
        trained.epochs(),
        trained.final_loss().unwrap_or(f64::NAN)
    );

    // Token-level accuracy via Viterbi decoding on the training sentences.
    let mut predicted = Vec::new();
    let mut gold = Vec::new();
    for row in sentences.scan() {
        let seq = row.get_sequence(0).expect("sequence column");
        let features: Vec<_> = seq.iter().map(|(f, _)| f.clone()).collect();
        predicted.push(task.viterbi(&trained.model, &features));
        gold.push(seq.iter().map(|&(_, y)| y as usize).collect());
    }
    println!(
        "token-level accuracy: {:.1}%",
        sequence_accuracy(&predicted, &gold) * 100.0
    );

    // Decode one sentence for illustration.
    if let Ok(row) = sentences.get(0) {
        let seq = row.get_sequence(0).unwrap();
        let features: Vec<_> = seq.iter().map(|(f, _)| f.clone()).collect();
        let decoded = task.viterbi(&trained.model, &features);
        let gold: Vec<usize> = seq.iter().map(|&(_, y)| y as usize).collect();
        println!("\nfirst sentence  gold: {gold:?}");
        println!("             decoded: {decoded:?}");
    }
}
