//! Classifying papers by research area — the sparse-text scenario that
//! motivates the paper's DBLife experiments. Demonstrates:
//!
//! * sparse feature vectors stored in an ordinary table column,
//! * L1-regularized logistic regression through the unified IGD architecture,
//! * why the *storage order* of the data matters (Section 3.2): the same
//!   model trained on clustered data vs shuffle-once data after the same
//!   number of epochs.
//!
//! Run with `cargo run --release --example paper_classification`.

use bismarck_core::tasks::LogisticRegressionTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{sparse_classification, SparseClassificationConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;

fn main() {
    // Sparse "papers": ~8k vocabulary, ~40 words per paper, labels are the
    // research area (±1), and — crucially — the table is stored clustered by
    // label, as it might be if it were loaded from an area-partitioned
    // archive.
    let table = sparse_classification(
        "papers",
        SparseClassificationConfig {
            examples: 4_000,
            vocabulary: 8_000,
            avg_nnz: 40,
            informative: 400,
            clustered_by_label: true,
            seed: 42,
        },
    );
    let dim = bismarck_core::frontend::infer_dimension(&table, 1);
    let task = LogisticRegressionTask::new(1, 2, dim).with_l1(0.001);

    let epochs = 10;
    let base = TrainerConfig::default()
        .with_step_size(StepSizeSchedule::Constant(0.2))
        .with_convergence(ConvergenceTest::FixedEpochs(epochs));

    println!(
        "training L1-regularized LR on {} sparse papers (dim {dim})",
        table.len()
    );
    for (label, order) in [
        ("Clustered   ", ScanOrder::Clustered),
        ("ShuffleOnce ", ScanOrder::ShuffleOnce { seed: 9 }),
        ("ShuffleAlways", ScanOrder::ShuffleAlways { seed: 9 }),
    ] {
        let trained = Trainer::new(&task, base.clone().with_scan_order(order)).train(&table);
        let nonzero = trained.model.iter().filter(|w| w.abs() > 1e-9).count();
        println!(
            "  {label}  epochs={:2}  objective={:8.2}  wall-clock={:6.3}s  shuffle={:6.3}s  nonzero weights={}",
            trained.epochs(),
            trained.final_loss().unwrap_or(f64::NAN),
            trained.history.total_duration().as_secs_f64(),
            trained.history.total_shuffle_duration().as_secs_f64(),
            nonzero,
        );
    }
    println!();
    println!("Note how the clustered order lags the shuffled orders at equal epochs,");
    println!("and how ShuffleOnce avoids ShuffleAlways's per-epoch reordering cost.");
}
