//! End-to-end in-RDBMS analytics through SQL, exactly the user experience
//! Section 2.1 of the paper describes: load a labeled table, issue
//! `SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')`, inspect the
//! persisted model with ordinary SQL, and apply it to new data with
//! `SVMPredict`.
//!
//! Run with `cargo run --release --example sql_analytics`.

use bismarck_datagen::{dense_classification, DenseClassificationConfig};
use bismarck_sql::SqlSession;

fn main() {
    let mut session = SqlSession::with_seed(2012);

    // 1. Load a Forest-like labeled table generated in Rust. SQL INSERT with
    //    vector literals works too, shown here on a small scratch table.
    session
        .register_table(dense_classification(
            "LabeledPapers",
            DenseClassificationConfig {
                examples: 2_000,
                dimension: 8,
                ..Default::default()
            },
        ))
        .unwrap();
    session
        .execute_script(
            "CREATE TABLE Scratch (id INT, vec DENSE_VEC, tag SPARSE_VEC);
             INSERT INTO Scratch VALUES
               (1, ARRAY[0.9, 0.8, 0.7], {0: 1.0, 40000: 2.5}),
               (2, ARRAY[-0.9, -0.8, -0.7], {7: 1.0});",
        )
        .expect("loading hand-written rows");
    let scratch = session
        .execute("SELECT id, DIM(vec) AS dense_dim, NNZ(tag) AS sparse_nnz FROM Scratch")
        .expect("scratch query");
    println!("hand-inserted rows (dense + sparse vector literals):\n{scratch}");

    // 2. Ordinary SQL over the training data: class balance and feature scale.
    let stats = session
        .execute(
            "SELECT label, COUNT(*) AS n, AVG(DOT(vec, vec)) AS mean_sq_norm \
             FROM LabeledPapers GROUP BY label ORDER BY label",
        )
        .expect("class statistics");
    println!("class statistics:\n{stats}");

    // 3. Train. The optional trailing arguments override the step size and
    //    the number of epochs, mirroring MADlib-style parameters.
    let summary = session
        .execute("SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label', 0.1, 15)")
        .expect("SVM training");
    println!("training summary:\n{summary}");

    // 4. The model is an ordinary table in the same catalog.
    let coefficients = session
        .execute("SELECT idx, weight FROM myModel ORDER BY ABS(weight) DESC LIMIT 5")
        .expect("model inspection");
    println!("largest coefficients:\n{coefficients}");

    // 5. Apply the persisted model with SVMPredict and measure how often the
    //    predictions agree with the stored labels.
    let predictions = session
        .execute("SELECT SVMPredict('myModel', 'LabeledPapers', 'vec')")
        .expect("prediction");
    let predicted: Vec<f64> = predictions
        .column_values("prediction")
        .expect("prediction column")
        .iter()
        .map(|v| v.as_double().unwrap_or(0.0))
        .collect();
    let labels: Vec<f64> = session
        .database()
        .table("LabeledPapers")
        .expect("table exists")
        .scan()
        .map(|t| t.get_double(2).unwrap_or(0.0))
        .collect();
    let agree = predicted
        .iter()
        .zip(&labels)
        .filter(|(p, y)| (*p - *y).abs() < 0.5)
        .count();
    println!(
        "training accuracy via SVMPredict: {:.1}% ({agree}/{} rows)\n",
        100.0 * agree as f64 / labels.len() as f64,
        labels.len()
    );

    // 6. ORDER BY RANDOM() gives the without-replacement samples Section 3
    //    leans on; here it just picks a few rows to eyeball.
    let sample = session
        .execute("SELECT id, label FROM LabeledPapers ORDER BY RANDOM() LIMIT 5")
        .expect("random sample");
    println!("a random sample of training rows (ORDER BY RANDOM()):\n{sample}");
}
