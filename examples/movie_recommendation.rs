//! Movie recommendation with low-rank matrix factorization (the MovieLens
//! workload of Figure 1(B)), plus a comparison against the ALS baseline that
//! stands in for a native in-RDBMS recommendation tool.
//!
//! Run with `cargo run --release --example movie_recommendation`.

use std::time::Instant;

use bismarck_baselines::als::als_train;
use bismarck_baselines::AlsConfig;
use bismarck_core::tasks::LmfTask;
use bismarck_core::{StepSizeSchedule, Trainer, TrainerConfig};
use bismarck_datagen::{ratings_table, RatingsConfig};
use bismarck_storage::ScanOrder;
use bismarck_uda::ConvergenceTest;

fn main() {
    let (users, movies, rank) = (400, 300, 8);
    let ratings = ratings_table(
        "ratings",
        RatingsConfig {
            rows: users,
            cols: movies,
            ratings: 30_000,
            true_rank: 5,
            noise: 0.1,
            seed: 3,
        },
    );
    println!(
        "{} observed ratings over a {users} x {movies} matrix, rank {rank} factors",
        ratings.len()
    );

    // Bismarck: IGD over (user, movie, rating) tuples.
    let task = LmfTask::new(0, 1, 2, users, movies, rank).with_regularization(0.01);
    let config = TrainerConfig::default()
        .with_scan_order(ScanOrder::ShuffleOnce { seed: 1 })
        .with_step_size(StepSizeSchedule::Constant(0.02))
        .with_convergence(ConvergenceTest::paper_default(25));
    let start = Instant::now();
    let trained = Trainer::new(&task, config).train(&ratings);
    let igd_time = start.elapsed();
    let igd_rmse = (trained.final_loss().unwrap_or(f64::NAN) / ratings.len() as f64).sqrt();
    println!(
        "Bismarck IGD : {:2} epochs, {:6.2}s, training RMSE {:.3}",
        trained.epochs(),
        igd_time.as_secs_f64(),
        igd_rmse
    );

    // Baseline: alternating least squares.
    let start = Instant::now();
    let als = als_train(
        &ratings,
        AlsConfig {
            sweeps: 10,
            ..AlsConfig::new(users, movies, rank)
        },
    );
    let als_time = start.elapsed();
    let als_rmse = (als.losses.last().copied().unwrap_or(f64::NAN) / ratings.len() as f64).sqrt();
    println!(
        "ALS baseline : 10 sweeps, {:6.2}s, training RMSE {:.3}",
        als_time.as_secs_f64(),
        als_rmse
    );

    // Show a few predictions from the IGD factors.
    println!("\nsample predictions (user, movie) -> predicted rating:");
    for (u, m) in [(0usize, 0usize), (5, 10), (100, 50), (250, 200)] {
        println!(
            "  ({u:3}, {m:3}) -> {:+.2}",
            task.predict(&trained.model, u, m)
        );
    }
}
